// Package lp provides primal simplex solvers for linear programs
//
//	maximize  c·x
//	subject to  A x {<=,=,>=} b,  x >= 0
//
// It is the optimization substrate behind CBS-RELAX (Eq. 14-16 of the
// paper): with a concave piecewise-linear utility the relaxed provisioning
// problem is exactly an LP. Both solvers use the Big-M method for equality
// and >= rows (with the M component of every cost tracked symbolically,
// so no literal large constant is needed) and pivot by Dantzig's rule
// with a Bland fallback that guarantees termination on degenerate
// instances.
//
// Solve and SolveWarm (sparse.go) are the production entry points: a
// sparse revised simplex with eta-file basis updates and warm starts
// from a previous optimal basis. SolveDense is the original dense
// tableau, kept as the independent reference that the sparse engine is
// differential-tested against.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the direction of a constraint row.
type Sense int

// Constraint senses.
const (
	LE Sense = iota + 1 // a·x <= b
	GE                  // a·x >= b
	EQ                  // a·x == b
)

// Constraint is one row a·x (sense) b.
type Constraint struct {
	Coeffs []float64
	Sense  Sense
	RHS    float64
}

// Problem is a linear program in the package's canonical form. All
// variables are implicitly non-negative.
type Problem struct {
	NumVars     int
	Objective   []float64 // length NumVars; maximized
	Constraints []Constraint
}

// Solution is an optimal assignment. Iterations counts simplex pivots,
// which is how warm-start savings are measured.
type Solution struct {
	X          []float64
	Objective  float64
	Iterations int
}

var (
	// ErrInfeasible is returned when no assignment satisfies the rows.
	ErrInfeasible = errors.New("lp: infeasible")
	// ErrUnbounded is returned when the objective grows without bound.
	ErrUnbounded = errors.New("lp: unbounded")
	// ErrBadProblem is returned for malformed input.
	ErrBadProblem = errors.New("lp: malformed problem")
)

const eps = 1e-9

// AddConstraint appends a row to the problem, copying the coefficients.
func (p *Problem) AddConstraint(coeffs []float64, sense Sense, rhs float64) {
	c := make([]float64, len(coeffs))
	copy(c, coeffs)
	p.Constraints = append(p.Constraints, Constraint{Coeffs: c, Sense: sense, RHS: rhs})
}

func (p *Problem) validate() error {
	if p.NumVars <= 0 {
		return fmt.Errorf("%w: NumVars=%d", ErrBadProblem, p.NumVars)
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("%w: objective has %d coeffs, want %d",
			ErrBadProblem, len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) != p.NumVars {
			return fmt.Errorf("%w: row %d has %d coeffs, want %d",
				ErrBadProblem, i, len(c.Coeffs), p.NumVars)
		}
		switch c.Sense {
		case LE, GE, EQ:
		default:
			return fmt.Errorf("%w: row %d has invalid sense", ErrBadProblem, i)
		}
	}
	return nil
}

// SolveDense runs the dense tableau simplex and returns an optimal
// solution. It is retained as the reference implementation; production
// callers should prefer Solve/SolveWarm (sparse revised simplex).
func SolveDense(p *Problem) (*Solution, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	t := newTableau(p)
	if err := t.run(); err != nil {
		return nil, err
	}
	return t.solution(p)
}

// tableau is a dense simplex tableau. Big-M costs are carried as a pair of
// reduced-cost rows (real part, M part) that are updated incrementally on
// every pivot, so selecting the entering column is O(n).
type tableau struct {
	m, n  int         // rows, total columns
	a     [][]float64 // m x n
	b     []float64   // m
	rcR   []float64   // reduced costs, real part (length n)
	rcM   []float64   // reduced costs, Big-M part
	basis []int       // basic variable per row
	inB   []bool      // inB[j]: column j is basic

	structural int // columns that map back to original variables
	artificial []bool
	iters      int
}

func newTableau(p *Problem) *tableau {
	m := len(p.Constraints)
	rows := make([]Constraint, m)
	copy(rows, p.Constraints)
	for i := range rows {
		if rows[i].RHS < 0 {
			// Normalize to non-negative RHS by flipping the row.
			flipped := make([]float64, len(rows[i].Coeffs))
			for j, v := range rows[i].Coeffs {
				flipped[j] = -v
			}
			rows[i].Coeffs = flipped
			rows[i].RHS = -rows[i].RHS
			switch rows[i].Sense {
			case LE:
				rows[i].Sense = GE
			case GE:
				rows[i].Sense = LE
			}
		}
	}
	slacks, arts := 0, 0
	for _, r := range rows {
		switch r.Sense {
		case LE:
			slacks++
		case GE:
			slacks++
			arts++
		case EQ:
			arts++
		}
	}
	n := p.NumVars + slacks + arts
	t := &tableau{
		m: m, n: n,
		a:          make([][]float64, m),
		b:          make([]float64, m),
		rcR:        make([]float64, n),
		rcM:        make([]float64, n),
		basis:      make([]int, m),
		inB:        make([]bool, n),
		structural: p.NumVars,
		artificial: make([]bool, n),
	}
	copy(t.rcR, p.Objective)

	slackCol := p.NumVars
	artCol := p.NumVars + slacks
	for i, r := range rows {
		t.a[i] = make([]float64, n)
		copy(t.a[i], r.Coeffs)
		t.b[i] = r.RHS
		switch r.Sense {
		case LE:
			t.a[i][slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			t.a[i][slackCol] = -1
			slackCol++
			t.a[i][artCol] = 1
			t.artificial[artCol] = true
			t.basis[i] = artCol
			artCol++
		case EQ:
			t.a[i][artCol] = 1
			t.artificial[artCol] = true
			t.basis[i] = artCol
			artCol++
		}
		t.inB[t.basis[i]] = true
	}

	// Initialize reduced costs: artificial basics have cost (0, -1), so
	// rc_j = c_j - Σ_{i: basis[i] artificial} (-1)·a[i][j] in the M part.
	for i := 0; i < m; i++ {
		if !t.artificial[t.basis[i]] {
			continue
		}
		row := t.a[i]
		for j := 0; j < n; j++ {
			t.rcM[j] += row[j]
		}
	}
	// Basic columns must show zero reduced cost.
	for _, bj := range t.basis {
		t.rcR[bj] = 0
		t.rcM[bj] = 0
	}
	return t
}

// betterThanZero reports whether lexicographic cost (M, real) is positive.
func betterThanZero(real, bigM float64) bool {
	if bigM > eps {
		return true
	}
	if bigM < -eps {
		return false
	}
	return real > eps
}

func (t *tableau) run() error {
	maxIter := 500 * (t.m + t.n + 10)
	// Dantzig's rule is fast but can cycle on degenerate problems;
	// switch to Bland's rule (guaranteed finite) after a grace budget.
	blandAfter := 20 * (t.m + t.n + 10)
	for iter := 0; iter < maxIter; iter++ {
		enter := t.chooseEntering(iter >= blandAfter)
		if enter < 0 {
			return t.checkFeasible()
		}
		leave := t.chooseLeaving(enter)
		if leave < 0 {
			if err := t.checkFeasible(); err != nil {
				return err
			}
			return ErrUnbounded
		}
		t.iters++
		t.pivot(leave, enter)
	}
	return errors.New("lp: iteration limit exceeded")
}

func (t *tableau) chooseEntering(bland bool) int {
	if bland {
		for j := 0; j < t.n; j++ {
			if t.inB[j] || (t.artificial[j] && !t.inB[j] && t.isDeparted(j)) {
				continue
			}
			if betterThanZero(t.rcR[j], t.rcM[j]) {
				return j
			}
		}
		return -1
	}
	best := -1
	bestR, bestM := 0.0, 0.0
	for j := 0; j < t.n; j++ {
		if t.inB[j] || t.artificial[j] {
			// Never re-enter artificials; they start basic and once
			// driven out stay out.
			continue
		}
		r, mm := t.rcR[j], t.rcM[j]
		if !betterThanZero(r, mm) {
			continue
		}
		if best < 0 || mm > bestM+eps || (math.Abs(mm-bestM) <= eps && r > bestR) {
			best, bestR, bestM = j, r, mm
		}
	}
	return best
}

// isDeparted reports whether an artificial column has left the basis.
func (t *tableau) isDeparted(j int) bool { return t.artificial[j] && !t.inB[j] }

func (t *tableau) chooseLeaving(enter int) int {
	leave := -1
	best := math.Inf(1)
	for i := 0; i < t.m; i++ {
		if t.a[i][enter] > eps {
			ratio := t.b[i] / t.a[i][enter]
			if ratio < best-eps ||
				(math.Abs(ratio-best) <= eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
				best = ratio
				leave = i
			}
		}
	}
	return leave
}

func (t *tableau) pivot(row, col int) {
	pv := t.a[row][col]
	arow := t.a[row]
	inv := 1 / pv
	for j := 0; j < t.n; j++ {
		arow[j] *= inv
	}
	t.b[row] *= inv
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ai := t.a[i]
		for j := 0; j < t.n; j++ {
			ai[j] -= f * arow[j]
		}
		t.b[i] -= f * t.b[row]
	}
	// Update the reduced-cost rows with the same elimination.
	fR, fM := t.rcR[col], t.rcM[col]
	if fR != 0 || fM != 0 {
		for j := 0; j < t.n; j++ {
			t.rcR[j] -= fR * arow[j]
			t.rcM[j] -= fM * arow[j]
		}
	}
	t.inB[t.basis[row]] = false
	t.basis[row] = col
	t.inB[col] = true
	t.rcR[col] = 0
	t.rcM[col] = 0
}

func (t *tableau) checkFeasible() error {
	for i, bi := range t.basis {
		if t.artificial[bi] && t.b[i] > 1e-7 {
			return ErrInfeasible
		}
	}
	return nil
}

func (t *tableau) solution(p *Problem) (*Solution, error) {
	x := make([]float64, p.NumVars)
	for i, bi := range t.basis {
		if bi < t.structural {
			x[bi] = t.b[i]
			if x[bi] < 0 && x[bi] > -1e-7 {
				x[bi] = 0
			}
		}
	}
	obj := 0.0
	for j, c := range p.Objective {
		obj += c * x[j]
	}
	return &Solution{X: x, Objective: obj, Iterations: t.iters}, nil
}
