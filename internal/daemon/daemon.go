package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"
)

// RunConfig parameterizes a daemon process.
type RunConfig struct {
	// Addr is the listen address (e.g. ":8080"). Required.
	Addr string
	// TickEvery is the wall-clock interval between automatic control
	// ticks. 0 disables automatic ticks (they can still be forced via
	// POST /v1/tick) — useful for tests and replay drivers.
	TickEvery time.Duration
	// Server holds the HTTP front-end options.
	Server ServerConfig
	// FinalPlan, when non-nil, receives the final plan as JSON during
	// graceful shutdown.
	FinalPlan io.Writer
	// Log receives operational messages; log.Default() when nil.
	Log *log.Logger
	// Ready, when non-nil, is closed once the listener is bound; the
	// bound address is stored in BoundAddr first. For tests and for
	// ":0" listeners.
	Ready chan<- string
}

// Daemon couples an Engine with its HTTP server and run loop.
type Daemon struct {
	eng *Engine
	srv *Server
	cfg RunConfig
}

// NewDaemon builds a daemon around an engine.
func NewDaemon(eng *Engine, cfg RunConfig) (*Daemon, error) {
	if cfg.Addr == "" {
		return nil, errors.New("daemon: listen address required")
	}
	if cfg.Log == nil {
		cfg.Log = log.Default()
	}
	return &Daemon{eng: eng, srv: NewServer(eng, cfg.Server), cfg: cfg}, nil
}

// Run serves until ctx is cancelled (SIGINT/SIGTERM when the caller wires
// signal.NotifyContext), then shuts down gracefully: the ingest queue is
// flushed, one final control tick runs under the tick deadline so the
// last arrival window is provisioned, the final plan is written to
// cfg.FinalPlan, and the HTTP listener drains.
func (d *Daemon) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", d.cfg.Addr)
	if err != nil {
		return fmt.Errorf("daemon: listen %s: %w", d.cfg.Addr, err)
	}
	httpSrv := &http.Server{Handler: d.srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	d.cfg.Log.Printf("harmonyd: listening on %s (period %.0fs, %d task types)",
		ln.Addr(), d.eng.PeriodSeconds(), d.eng.NumTaskTypes())
	if d.cfg.Ready != nil {
		d.cfg.Ready <- ln.Addr().String()
		close(d.cfg.Ready)
	}

	var tickC <-chan time.Time
	if d.cfg.TickEvery > 0 {
		//harmony:allow nodeterm the run loop's tick cadence is genuinely wall-clock; Replay is the deterministic reference
		ticker := time.NewTicker(d.cfg.TickEvery)
		defer ticker.Stop()
		tickC = ticker.C
	}

loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case err := <-serveErr:
			return fmt.Errorf("daemon: serve: %w", err)
		case <-tickC:
			if _, err := d.srv.ForceTick(context.Background()); err != nil {
				d.cfg.Log.Printf("harmonyd: tick: %v", err)
			}
		}
	}

	// Graceful shutdown: final flush + tick + plan dump, bounded by the
	// tick deadline, then listener drain.
	d.cfg.Log.Printf("harmonyd: shutting down")
	if _, err := d.srv.ForceTick(context.Background()); err != nil {
		d.cfg.Log.Printf("harmonyd: final tick: %v", err)
	}
	if d.cfg.FinalPlan != nil {
		if plan, err := d.eng.Plan(); err == nil {
			enc := json.NewEncoder(d.cfg.FinalPlan)
			enc.SetIndent("", "  ")
			if err := enc.Encode(plan); err != nil {
				d.cfg.Log.Printf("harmonyd: final plan: %v", err)
			}
		}
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), d.srv.cfg.TickDeadline)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("daemon: shutdown: %w", err)
	}
	<-serveErr // http.ErrServerClosed
	// With the listener drained nothing can enqueue anymore; stop the
	// ingest worker so no goroutine outlives Run.
	d.srv.Close()
	return nil
}
