// Package daemon turns the batch HARMONY pipeline into a long-running
// online provisioning service: tasks stream in over HTTP, are classified
// by nearest centroid the moment they arrive (short sub-class first), and
// every control-period tick the incremental control loop — per-class
// arrival-rate windows, ARIMA refit, M/G/c container sizing, CBS-RELAX +
// MPC, First-Fit realization — produces a fresh machine plan.
//
// The control loop is the same sched.Harmony policy the simulator drives,
// fed synthetic observations built from the ingest state, so a streamed
// trace prefix and a batch replay of the same prefix produce bit-identical
// plans (Replay is that batch reference, and the end-to-end test asserts
// the equivalence).
package daemon

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"harmony/internal/classify"
	"harmony/internal/core"
	"harmony/internal/energy"
	"harmony/internal/forecast"
	"harmony/internal/metrics"
	"harmony/internal/sched"
	"harmony/internal/sim"
	"harmony/internal/trace"
)

// Config parameterizes the online controller.
type Config struct {
	Machines []trace.MachineType
	Models   []energy.Model
	Char     *classify.Characterization

	Mode core.Mode // CBS (default) or CBP
	//harmony:unit(s)
	PeriodSeconds float64 // control period in model time (default 300)
	Horizon       int     // MPC look-ahead periods (default 2)
	Epsilon       float64 // container-sizing overflow bound (default 0.25)
	Omega         float64 // over-provisioning factor (default 1.05)
	//harmony:unit(s)
	SLODelay map[trace.PriorityGroup]float64
	// PricePerKWh is the flat electricity price (default 0.08).
	//harmony:unit($/kWh)
	PricePerKWh float64
	// SwitchCostDollars is the per-transition cost of the largest
	// machine; other types scale by idle power (default 0.01).
	//harmony:unit($)
	SwitchCostDollars float64
	Forecaster        sched.PredictorKind

	// Registry receives the daemon's metrics; a private registry is
	// created when nil.
	Registry *metrics.Registry
}

func (cfg *Config) defaults() {
	if cfg.Mode == 0 {
		cfg.Mode = core.CBS
	}
	if cfg.PeriodSeconds <= 0 {
		cfg.PeriodSeconds = 300
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 2
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 0.25
	}
	if cfg.Omega < 1 {
		cfg.Omega = 1.05
	}
	if cfg.PricePerKWh <= 0 {
		cfg.PricePerKWh = 0.08
	}
	if cfg.SwitchCostDollars <= 0 {
		cfg.SwitchCostDollars = 0.01
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
}

// MachinePlan is the provisioning decision for one machine type.
type MachinePlan struct {
	Type       int    `json:"type"`     // machine type id
	Platform   string `json:"platform"` // micro-architecture identifier
	Active     int    `json:"active"`   // machines to keep powered
	Available  int    `json:"available"`
	Containers []int  `json:"containers"` // per-task-type container quota
}

// Plan is one control period's provisioning decision — the daemon's
// primary output, served at /v1/plan.
type Plan struct {
	PeriodIndex     int           `json:"periodIndex"` // 1-based tick count
	ModelTime       float64       `json:"modelTime"`   // seconds of model time at the boundary
	Mode            string        `json:"mode"`        // CBS or CBP
	TotalActive     int           `json:"totalActive"`
	TotalContainers int           `json:"totalContainers"`
	Dropped         int           `json:"dropped"` // containers the packing could not place
	Machines        []MachinePlan `json:"machines"`
}

// Stats is the observability snapshot served at /v1/stats.
type Stats struct {
	TasksIngested  uint64            `json:"tasksIngested"`
	TasksByGroup   map[string]uint64 `json:"tasksByGroup"`
	LabelFallbacks uint64            `json:"labelFallbacks"`
	Relabels       uint64            `json:"relabels"`
	OpenTasks      int               `json:"openTasks"`

	Ticks           uint64  `json:"ticks"`
	TickErrors      uint64  `json:"tickErrors"`
	TicksSkipped    uint64  `json:"ticksSkipped"`
	TicksLate       uint64  `json:"ticksLate"`
	LastTickSeconds float64 `json:"lastTickSeconds"`
	ForecastMAE     float64 `json:"forecastMAE"` // tasks/period, over short types

	// Delta-placement counters (core.DeltaStats, cumulative since start):
	// machine types whose packings were reused across ticks, types
	// repacked because their plan projection changed, and realizations
	// that fell back to a full repack.
	DeltaReusedTypes   uint64 `json:"deltaReusedTypes"`
	DeltaRepackedTypes uint64 `json:"deltaRepackedTypes"`
	DeltaFullRepacks   uint64 `json:"deltaFullRepacks"`

	PeriodSeconds float64 `json:"periodSeconds"`
	PeriodIndex   int     `json:"periodIndex"`
	ModelTime     float64 `json:"modelTime"`
	Classes       int     `json:"classes"`
	TaskTypes     int     `json:"taskTypes"`
	TotalActive   int     `json:"totalActive"`
	LastError     string  `json:"lastError,omitempty"`
}

// openTask is a task the daemon believes is still running: its label may
// still be upgraded short → long as observed runtime accumulates.
type openTask struct {
	typ      int
	submit   float64
	duration float64
}

// Engine is the mutex-guarded online controller: Ingest and Tick may be
// called from any goroutine; all state lives behind mu except the policy,
// which only the single in-flight tick touches (guarded by solving).
type Engine struct {
	cfg     Config
	price   energy.Price
	types   []classify.TaskType
	labeler *classify.Labeler
	typeIdx map[classify.TypeID]int

	mu sync.Mutex
	//harmony:guardedby(mu)
	now float64 // model time of the last tick boundary
	//harmony:guardedby(mu)
	periodIdx int // completed ticks
	//harmony:guardedby(mu)
	arrivals []int // per type, since the last tick
	//harmony:guardedby(mu)
	open []openTask
	//harmony:guardedby(mu)
	plan *Plan
	//harmony:guardedby(mu)
	active []int // machines powered per type (MPC state)
	//harmony:guardedby(mu)
	prevForecast []float64
	//harmony:guardedby(mu)
	stats Stats
	// arrHist[n] is the last backtestCap arrival windows (tasks/period)
	// of short type n — the series ForecastBacktest evaluates. Long
	// sub-types receive no direct arrivals and keep empty histories.
	//harmony:guardedby(mu)
	arrHist [][]float64

	// solving serializes ticks without blocking ingest: the policy and
	// MPC state transition are owned by whichever tick holds the flag.
	solving atomic.Bool
	policy  *sched.Harmony

	mTasks       *metrics.CounterVec
	mFallbacks   *metrics.Counter
	mRelabels    *metrics.Counter
	mOpen        *metrics.Gauge
	mTicks       *metrics.Counter
	mTickErrs    *metrics.Counter
	mTickSkips   *metrics.Counter
	mTickLate    *metrics.Counter
	mTickSecs    *metrics.Histogram
	mActive      *metrics.Gauge
	mActiveByTyp *metrics.GaugeVec
	mContainers  *metrics.Gauge
	mForecastMAE *metrics.Gauge
	mDeltaReuse  *metrics.Gauge
	mDeltaRepack *metrics.Gauge
	mDeltaFull   *metrics.Gauge
}

// Tick coordination errors.
var (
	// ErrTickInFlight is returned when a tick is requested while the
	// previous one is still solving.
	ErrTickInFlight = errors.New("daemon: tick already in flight")
	// ErrNoPlan is returned by Plan before the first completed tick.
	ErrNoPlan = errors.New("daemon: no plan yet")
)

// NewEngine validates the configuration and builds the online controller.
func NewEngine(cfg Config) (*Engine, error) {
	cfg.defaults()
	if len(cfg.Machines) == 0 {
		return nil, errors.New("daemon: no machine types")
	}
	if len(cfg.Models) != len(cfg.Machines) {
		return nil, fmt.Errorf("daemon: %d energy models for %d machine types",
			len(cfg.Models), len(cfg.Machines))
	}
	if cfg.Char == nil {
		return nil, errors.New("daemon: characterization required")
	}
	types := cfg.Char.TaskTypes()
	if len(types) == 0 {
		return nil, errors.New("daemon: characterization has no task types")
	}

	// Per-type switch costs scale with idle power relative to the
	// largest machine — the same wiring harmony.Simulate uses, so the
	// daemon's plans match the batch pipeline's.
	maxIdle := 0.0
	for _, m := range cfg.Models {
		if m.IdleWatts > maxIdle {
			maxIdle = m.IdleWatts
		}
	}
	switchCost := make([]float64, len(cfg.Models))
	for i, m := range cfg.Models {
		if maxIdle > 0 {
			switchCost[i] = cfg.SwitchCostDollars * m.IdleWatts / maxIdle
		}
	}
	price := energy.FlatPrice(cfg.PricePerKWh)
	policy, err := sched.NewHarmony(sched.HarmonyConfig{
		Mode:          cfg.Mode,
		Machines:      cfg.Machines,
		Models:        cfg.Models,
		Types:         types,
		Price:         price,
		PeriodSeconds: cfg.PeriodSeconds,
		Horizon:       cfg.Horizon,
		SLODelay:      cfg.SLODelay,
		Epsilon:       cfg.Epsilon,
		Omega:         cfg.Omega,
		SwitchCost:    switchCost,
		Predictor:     cfg.Forecaster,
	})
	if err != nil {
		return nil, fmt.Errorf("daemon: build policy: %w", err)
	}

	typeIdx := make(map[classify.TypeID]int, len(types))
	for i, tt := range types {
		typeIdx[tt.ID] = i
	}
	e := &Engine{
		cfg:      cfg,
		price:    price,
		types:    types,
		labeler:  classify.NewLabeler(cfg.Char),
		typeIdx:  typeIdx,
		arrivals: make([]int, len(types)),
		active:   make([]int, len(cfg.Machines)),
		arrHist:  make([][]float64, len(types)),
		policy:   policy,
	}
	e.stats.TasksByGroup = make(map[string]uint64, trace.NumGroups)
	e.stats.PeriodSeconds = cfg.PeriodSeconds
	e.stats.Classes = len(cfg.Char.Classes)
	e.stats.TaskTypes = len(types)

	r := cfg.Registry
	e.mTasks = r.CounterVec("harmonyd_tasks_ingested_total", "Tasks ingested, by priority group.", "group")
	e.mFallbacks = r.Counter("harmonyd_label_fallback_total", "Tasks whose priority group had no class (labeled type 0).")
	e.mRelabels = r.Counter("harmonyd_relabels_total", "Short-to-long relabels driven by observed runtime.")
	e.mOpen = r.Gauge("harmonyd_open_tasks", "Tasks believed to be running at the last tick.")
	e.mTicks = r.Counter("harmonyd_ticks_total", "Completed control-period ticks.")
	e.mTickErrs = r.Counter("harmonyd_tick_errors_total", "Ticks whose control loop failed (previous plan kept).")
	e.mTickSkips = r.Counter("harmonyd_ticks_skipped_total", "Tick requests rejected because one was in flight.")
	e.mTickLate = r.Counter("harmonyd_ticks_late_total", "Ticks that finished after their deadline.")
	e.mTickSecs = r.Histogram("harmonyd_tick_duration_seconds", "Wall-clock latency of the control loop.", nil)
	e.mActive = r.Gauge("harmonyd_machines_active", "Machines the current plan keeps powered.")
	e.mActiveByTyp = r.GaugeVec("harmonyd_machines_active_by_type", "Machines the current plan keeps powered, by machine type.", "type")
	e.mContainers = r.Gauge("harmonyd_containers_planned", "Container slots in the current plan.")
	e.mForecastMAE = r.Gauge("harmonyd_forecast_mae_tasks", "Mean absolute error of the last per-type arrival forecast (tasks/period).")
	e.mDeltaReuse = r.Gauge("harmonyd_delta_reused_types", "Machine types whose packings the delta placement reused across ticks (cumulative).")
	e.mDeltaRepack = r.Gauge("harmonyd_delta_repacked_types", "Machine types repacked because their plan projection changed (cumulative).")
	e.mDeltaFull = r.Gauge("harmonyd_delta_full_repacks", "Realizations that fell back to a full repack (cumulative).")
	return e, nil
}

// NumTaskTypes returns the number of provisionable task types.
func (e *Engine) NumTaskTypes() int { return len(e.types) }

// PeriodSeconds returns the control period in model time.
func (e *Engine) PeriodSeconds() float64 { return e.cfg.PeriodSeconds }

// validateTask rejects tasks the trace model would reject. The positivity
// checks are written as !(x > 0) so NaN fields (which compare false
// against everything) are rejected rather than slipping past a x <= 0
// guard into the arrival windows.
func validateTask(t trace.Task) error {
	if !(t.Duration > 0) || math.IsInf(t.Duration, 1) {
		return fmt.Errorf("daemon: task %d duration not in (0,+Inf)", t.ID)
	}
	if !(t.CPU > 0 && t.CPU <= 1) || !(t.Mem > 0 && t.Mem <= 1) {
		return fmt.Errorf("daemon: task %d demand out of (0,1]", t.ID)
	}
	if t.Priority < 0 || t.Priority > 11 {
		return fmt.Errorf("daemon: task %d priority out of [0,11]", t.ID)
	}
	if t.SchedClass < 0 || t.SchedClass > 3 {
		return fmt.Errorf("daemon: task %d sched class out of [0,3]", t.ID)
	}
	if !(t.Submit >= 0) || math.IsInf(t.Submit, 1) {
		return fmt.Errorf("daemon: task %d submit not in [0,+Inf)", t.ID)
	}
	return nil
}

// Ingest records one arriving task: nearest-centroid classification
// (short sub-class first), arrival accounting for the current window, and
// membership in the open set for later relabeling.
func (e *Engine) Ingest(t trace.Task) error {
	if err := validateTask(t); err != nil {
		return err
	}
	tt := 0
	id, labeled := e.labeler.Initial(t)
	if labeled {
		tt = e.typeIdx[id]
	} else {
		e.mFallbacks.Inc()
	}
	e.mTasks.With(t.Group().String()).Inc()

	e.mu.Lock()
	e.arrivals[tt]++
	e.stats.TasksIngested++
	e.stats.TasksByGroup[t.Group().String()]++
	if !labeled {
		e.stats.LabelFallbacks++
	}
	if t.Submit+t.Duration > e.now {
		e.open = append(e.open, openTask{typ: tt, submit: t.Submit, duration: t.Duration})
	}
	e.mu.Unlock()
	return nil
}

// Tick runs one control period: advance model time by one period, retire
// finished tasks, relabel survivors by observed age, record the arrival
// window, and run the forecast → queueing → MPC → packing chain. The
// context bounds the solve; on expiry Tick returns ctx.Err() while the
// solve finishes in the background and publishes its (late) plan — the
// next tick is skipped with ErrTickInFlight until it does.
func (e *Engine) Tick(ctx context.Context) (*Plan, error) {
	if !e.solving.CompareAndSwap(false, true) {
		e.mTickSkips.Add(1)
		e.mu.Lock()
		e.stats.TicksSkipped++
		e.mu.Unlock()
		return nil, ErrTickInFlight
	}

	e.mu.Lock()
	e.now += e.cfg.PeriodSeconds
	e.periodIdx++
	now, idx := e.now, e.periodIdx

	// Retire finished tasks and relabel the survivors by observed age —
	// the paper's short-first policy: a short label is upgraded to long
	// once the task outlives its sub-class boundary.
	kept := e.open[:0]
	relabels := 0
	for _, ot := range e.open {
		if ot.submit+ot.duration <= now {
			continue
		}
		age := now - ot.submit
		cur := e.types[ot.typ].ID
		if next := e.labeler.Refresh(cur, age); next != cur {
			if ni, ok := e.typeIdx[next]; ok {
				ot.typ = ni
				relabels++
			}
		}
		kept = append(kept, ot)
	}
	e.open = kept
	running := make([]int, len(e.types))
	for _, ot := range e.open {
		running[ot.typ]++
	}
	arr := append([]int(nil), e.arrivals...)
	for i := range e.arrivals {
		e.arrivals[i] = 0
	}
	// Record the closed window for the rolling-origin backtest; every
	// direct arrival lands on a short sub-type under label-short-first.
	for i := range arr {
		if e.types[i].ID.Sub != 0 {
			continue
		}
		h := append(e.arrHist[i], float64(arr[i]))
		if len(h) > backtestCap {
			h = h[len(h)-backtestCap:]
		}
		e.arrHist[i] = h
	}
	active := append([]int(nil), e.active...)
	// Forecast accuracy: compare the previous tick's one-period-ahead
	// rate forecast with this window's observed arrivals (short types
	// carry every arrival under label-short-first).
	if e.prevForecast != nil {
		sum, n := 0.0, 0
		for i, r := range e.prevForecast {
			if e.types[i].ID.Sub != 0 {
				continue
			}
			sum += math.Abs(r*e.cfg.PeriodSeconds - float64(arr[i]))
			n++
		}
		if n > 0 {
			e.stats.ForecastMAE = sum / float64(n)
			e.mForecastMAE.Set(e.stats.ForecastMAE)
		}
	}
	e.stats.Relabels += uint64(relabels)
	openCount := len(e.open)
	e.stats.OpenTasks = openCount
	e.stats.PeriodIndex = idx
	e.stats.ModelTime = now
	e.mu.Unlock()
	e.mRelabels.Add(float64(relabels))
	e.mOpen.Set(float64(openCount))

	obs := &sim.Observation{
		Time:        now,
		PeriodIndex: idx - 1,
		Arrivals:    arr,
		Queued:      make([]int, len(e.types)),
		Running:     running,
		Active:      active,
		Price:       e.price.At(now),
	}

	type result struct {
		plan *Plan
		err  error
	}
	done := make(chan result, 1)
	start := time.Now() //harmony:allow nodeterm tick latency metric; model time drives control
	go func() {
		defer e.solving.Store(false)
		plan, err := e.solve(obs, idx, now)
		elapsed := time.Since(start).Seconds() //harmony:allow nodeterm tick latency metric; model time drives control
		e.mTickSecs.Observe(elapsed)
		e.mu.Lock()
		e.stats.LastTickSeconds = elapsed
		e.mu.Unlock()
		if ctx.Err() != nil {
			e.mTickLate.Add(1)
			e.mu.Lock()
			e.stats.TicksLate++
			e.mu.Unlock()
		}
		done <- result{plan, err}
	}()
	select {
	case r := <-done:
		return r.plan, r.err
	case <-ctx.Done():
		// The solve continues in the background; its plan publishes
		// when ready and further ticks are skipped until then.
		return nil, fmt.Errorf("daemon: tick %d deadline: %w", idx, ctx.Err())
	}
}

// solve runs the policy and publishes the resulting plan; it is only ever
// executed by the single tick goroutine holding the solving flag.
func (e *Engine) solve(obs *sim.Observation, idx int, now float64) (*Plan, error) {
	dir := e.policy.Period(obs)
	if dir.TargetActive == nil {
		err := e.policy.Err()
		e.mTicks.Add(1)
		e.mTickErrs.Add(1)
		e.mu.Lock()
		e.stats.Ticks++
		e.stats.TickErrors++
		if err != nil {
			e.stats.LastError = err.Error()
		}
		e.mu.Unlock()
		if err == nil {
			err = errors.New("daemon: control loop produced no decision")
		}
		return nil, fmt.Errorf("daemon: tick %d: %w", idx, err)
	}
	dec := e.policy.LastDecision()
	plan := e.buildPlan(idx, now, dec)
	// Safe here: solve() owns the policy via the solving flag, and the
	// controller's counters only move inside Period.
	ds := e.policy.DeltaStats()

	e.mu.Lock()
	for m := range e.active {
		a := dec.ActiveMachines[m]
		if a < 0 {
			a = 0
		}
		if a > e.cfg.Machines[m].Count {
			a = e.cfg.Machines[m].Count
		}
		e.active[m] = a
	}
	e.plan = plan
	e.prevForecast = e.policy.LastForecast()
	e.stats.Ticks++
	e.stats.TotalActive = plan.TotalActive
	e.stats.DeltaReusedTypes = uint64(ds.ReusedTypes)
	e.stats.DeltaRepackedTypes = uint64(ds.RepackedTypes)
	e.stats.DeltaFullRepacks = uint64(ds.FullRepacks)
	e.mu.Unlock()

	e.mTicks.Add(1)
	e.mDeltaReuse.Set(float64(ds.ReusedTypes))
	e.mDeltaRepack.Set(float64(ds.RepackedTypes))
	e.mDeltaFull.Set(float64(ds.FullRepacks))
	e.mActive.Set(float64(plan.TotalActive))
	for _, mp := range plan.Machines {
		e.mActiveByTyp.With(fmt.Sprint(mp.Type)).Set(float64(mp.Active))
	}
	e.mContainers.Set(float64(plan.TotalContainers))
	return plan, nil
}

func (e *Engine) buildPlan(idx int, now float64, dec *core.Decision) *Plan {
	plan := &Plan{
		PeriodIndex: idx,
		ModelTime:   now,
		Mode:        e.cfg.Mode.String(),
		Machines:    make([]MachinePlan, len(e.cfg.Machines)),
	}
	for m, mt := range e.cfg.Machines {
		mp := MachinePlan{
			Type:       mt.ID,
			Platform:   mt.Platform,
			Active:     dec.ActiveMachines[m],
			Available:  mt.Count,
			Containers: append([]int(nil), dec.Quota[m]...),
		}
		plan.TotalActive += mp.Active
		for _, q := range mp.Containers {
			plan.TotalContainers += q
		}
		plan.Machines[m] = mp
	}
	for _, d := range dec.Dropped {
		plan.Dropped += d
	}
	return plan
}

// Plan returns the most recent provisioning decision.
func (e *Engine) Plan() (*Plan, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.plan == nil {
		return nil, ErrNoPlan
	}
	return e.plan, nil
}

// Snapshot returns a copy of the daemon's statistics.
func (e *Engine) Snapshot() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.TasksByGroup = make(map[string]uint64, len(e.stats.TasksByGroup))
	for k, v := range e.stats.TasksByGroup {
		s.TasksByGroup[k] = v
	}
	return s
}

// Rolling-origin backtest parameters: the history window kept per class
// (256 windows ≈ 21 hours at the default 5-minute period) and the
// training prefix before the first evaluated forecast.
const (
	backtestCap      = 256
	backtestMinTrain = 8
)

// ForecastBacktest runs a rolling-origin backtest (forecast.Backtest) of
// the configured predictor over each class's recorded arrival windows:
// at every origin past the training prefix the model is refitted on the
// prefix and its one-step forecast is scored against the next observed
// window. The result maps "class<k>" to MAE in tasks/period — directly
// comparable with both Stats.ForecastMAE (the online one-step error) and
// the offline rolling-origin numbers from internal/forecast. Classes
// with insufficient history are omitted.
func (e *Engine) ForecastBacktest() map[string]float64 {
	e.mu.Lock()
	hist := make([][]float64, len(e.arrHist))
	for i, h := range e.arrHist {
		hist[i] = append([]float64(nil), h...)
	}
	e.mu.Unlock()

	out := make(map[string]float64)
	for i, h := range hist {
		if len(h) <= backtestMinTrain {
			continue
		}
		m, err := forecast.Backtest(e.newBacktestPredictor(), h, backtestMinTrain)
		if err != nil {
			// Models that need more structure than the history offers
			// (seasonal-naive before a full day, ARIMA on a degenerate
			// series) fall back to the same EWMA bootstrap the policy's
			// forecast chain uses.
			if m, err = forecast.Backtest(&forecast.EWMA{Alpha: 0.4}, h, backtestMinTrain); err != nil {
				continue
			}
		}
		out[fmt.Sprintf("class%d", e.types[i].ID.Class)] = m.MAE
	}
	return out
}

// newBacktestPredictor mirrors sched.Harmony's forecaster selection so
// the backtest scores the model the control loop actually runs.
func (e *Engine) newBacktestPredictor() forecast.Predictor {
	switch e.cfg.Forecaster {
	case sched.PredictAutoARIMA:
		return &forecast.AutoARIMA{}
	case sched.PredictSeasonal:
		return &forecast.SeasonalNaive{Season: int(trace.Day / e.cfg.PeriodSeconds)}
	case sched.PredictEWMA:
		return &forecast.EWMA{Alpha: 0.4}
	case sched.PredictHoltWinters:
		return &forecast.HoltWinters{Season: int(trace.Day / e.cfg.PeriodSeconds)}
	default:
		// sched's default fixed order (2,0,1).
		if ar, err := forecast.NewARIMA(2, 0, 1); err == nil {
			return ar
		}
		return &forecast.EWMA{Alpha: 0.4}
	}
}

// Replay is the batch reference for the streaming daemon: it drives a
// fresh engine over the prefix of a task stream covered by the given
// number of control periods — ingesting tasks in submit order and ticking
// at every period boundary, exactly as the HTTP path would — and returns
// the final plan. A trace streamed through POST /v1/tasks with a tick per
// boundary must produce a bit-identical plan.
func Replay(cfg Config, tasks []trace.Task, ticks int) (*Plan, error) {
	if ticks <= 0 {
		return nil, errors.New("daemon: replay needs at least one tick")
	}
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	i := 0
	for k := 1; k <= ticks; k++ {
		boundary := float64(k) * e.cfg.PeriodSeconds
		for i < len(tasks) && tasks[i].Submit < boundary {
			if err := e.Ingest(tasks[i]); err != nil {
				return nil, err
			}
			i++
		}
		if _, err := e.Tick(context.Background()); err != nil {
			return nil, fmt.Errorf("daemon: replay tick %d: %w", k, err)
		}
	}
	return e.Plan()
}
