package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"harmony/internal/classify"
	"harmony/internal/trace"
)

// TestStreamingMatchesBatchReplay is the end-to-end acceptance test: a
// generated trace prefix (>10k tasks) streamed through POST /v1/tasks in
// NDJSON chunks across several control-period ticks must yield a plan
// bit-identical to the batch pipeline (Replay) over the same prefix.
func TestStreamingMatchesBatchReplay(t *testing.T) {
	const (
		ticks  = 4
		period = 300.0
	)
	gen := trace.DefaultConfig(7)
	gen.Horizon = ticks * period
	gen.RatePerS = 10
	tr, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	tasks := append([]trace.Task(nil), tr.Tasks...)
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].Submit < tasks[j].Submit })
	if len(tasks) < 10000 {
		t.Fatalf("trace too small for the acceptance bar: %d tasks", len(tasks))
	}
	ch, err := classify.Characterize(tr, classify.Config{Seed: 8, MaxK: 4})
	if err != nil {
		t.Fatal(err)
	}
	machines, models := testCluster(100)
	cfg := Config{Machines: machines, Models: models, Char: ch, PeriodSeconds: period}

	// Batch reference.
	batchPlan, err := Replay(cfg, tasks, ticks)
	if err != nil {
		t.Fatal(err)
	}

	// Streaming path: NDJSON chunks over HTTP, one forced tick per
	// period boundary.
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(eng, ServerConfig{}))
	defer srv.Close()

	streamed := 0
	i := 0
	for k := 1; k <= ticks; k++ {
		boundary := float64(k) * period
		var window []trace.Task
		for i < len(tasks) && tasks[i].Submit < boundary {
			window = append(window, tasks[i])
			i++
		}
		for len(window) > 0 {
			n := 512
			if n > len(window) {
				n = len(window)
			}
			resp, err := http.Post(srv.URL+"/v1/tasks", "application/x-ndjson",
				strings.NewReader(taskNDJSON(window[:n]...)))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("tick %d chunk: status %d", k, resp.StatusCode)
			}
			streamed += n
			window = window[n:]
		}
		resp, err := http.Post(srv.URL+"/v1/tick", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tick %d: status %d", k, resp.StatusCode)
		}
	}
	if streamed < 10000 {
		t.Fatalf("streamed only %d tasks", streamed)
	}

	resp, err := http.Get(srv.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	streamJSON, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(batchPlan); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(streamJSON), bytes.TrimSpace(buf.Bytes())) {
		t.Errorf("streamed plan differs from batch replay:\n--- streamed ---\n%s\n--- batch ---\n%s",
			streamJSON, buf.Bytes())
	}

	var plan Plan
	if err := json.Unmarshal(streamJSON, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.PeriodIndex != ticks {
		t.Errorf("final plan at period %d, want %d", plan.PeriodIndex, ticks)
	}
	if plan.TotalActive == 0 {
		t.Error("final plan provisions no machines")
	}
	if got := eng.Snapshot().TasksIngested; int(got) != streamed {
		t.Errorf("engine ingested %d of %d streamed", got, streamed)
	}
}

// TestDaemonGracefulShutdown covers the run loop: boot on an ephemeral
// port, ingest work, cancel the context (what SIGINT/SIGTERM do via
// signal.NotifyContext), and require a clean exit within the tick
// deadline with the final plan flushed to the configured writer.
func TestDaemonGracefulShutdown(t *testing.T) {
	eng, err := NewEngine(testEngineConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	var finalPlan bytes.Buffer
	const deadline = 10 * time.Second
	ready := make(chan string, 1)
	d, err := NewDaemon(eng, RunConfig{
		Addr:      "127.0.0.1:0",
		Server:    ServerConfig{TickDeadline: deadline},
		FinalPlan: &finalPlan,
		Ready:     ready,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- d.Run(ctx) }()
	addr := <-ready

	resp, err := http.Post("http://"+addr+"/v1/tasks", "application/x-ndjson",
		strings.NewReader(taskNDJSON(gratisTask(1, 10, 60), gratisTask(2, 20, 60))))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(deadline + 5*time.Second):
		t.Fatal("daemon did not shut down within the tick deadline")
	}

	var plan Plan
	if err := json.Unmarshal(finalPlan.Bytes(), &plan); err != nil {
		t.Fatalf("final plan not valid JSON: %v\n%s", err, finalPlan.Bytes())
	}
	if plan.PeriodIndex != 1 {
		t.Errorf("final plan period = %d", plan.PeriodIndex)
	}
}
