package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"harmony/internal/classify"
	"harmony/internal/energy"
	"harmony/internal/metrics"
	"harmony/internal/trace"
)

// testCharDoc is a deterministic two-class characterization in the
// persist format: a gratis class with a short/long split (relabel
// boundary at 100 s) and a production class with a single short
// sub-class. Gratis centroid at (0.02, 0.02), production at (0.1, 0.1).
const testCharDoc = `{
  "version": 1,
  "classes": [
    {
      "id": 0, "group": 1,
      "cpu": 0.02, "mem": 0.02, "cpuStd": 0.005, "memStd": 0.005,
      "count": 1000,
      "cpuQuantiles": [0.025, 0.03, 0.035, 0.05],
      "memQuantiles": [0.025, 0.03, 0.035, 0.05],
      "sub": [
        {"MeanDuration": 60, "SqCV": 1.2, "MaxDuration": 100, "Count": 900},
        {"MeanDuration": 5000, "SqCV": 0.5, "MaxDuration": 20000, "Count": 100}
      ],
      "logCentroid": [-3.912, -3.912]
    },
    {
      "id": 1, "group": 3,
      "cpu": 0.1, "mem": 0.1, "cpuStd": 0.02, "memStd": 0.02,
      "count": 50,
      "cpuQuantiles": [0.12, 0.13, 0.14, 0.16],
      "memQuantiles": [0.12, 0.13, 0.14, 0.16],
      "sub": [
        {"MeanDuration": 300, "SqCV": 1.0, "MaxDuration": 2000, "Count": 50}
      ],
      "logCentroid": [-2.303, -2.303]
    }
  ]
}`

func testChar(t testing.TB) *classify.Characterization {
	t.Helper()
	ch, err := classify.Load(strings.NewReader(testCharDoc))
	if err != nil {
		t.Fatalf("load test characterization: %v", err)
	}
	return ch
}

// testCluster returns the Table II cluster scaled down by factor.
func testCluster(factor int) ([]trace.MachineType, []energy.Model) {
	models := energy.TableII()
	machines := make([]trace.MachineType, len(models))
	for i := range models {
		models[i].Count /= factor
		if models[i].Count < 1 {
			models[i].Count = 1
		}
		machines[i] = models[i].MachineType(i + 1)
	}
	return machines, models
}

func testEngineConfig(t testing.TB) Config {
	machines, models := testCluster(100)
	return Config{Machines: machines, Models: models, Char: testChar(t)}
}

// gratisTask builds a task that labels into class 0 (short sub first).
func gratisTask(id uint64, submit, duration float64) trace.Task {
	return trace.Task{ID: id, Submit: submit, Duration: duration,
		CPU: 0.02, Mem: 0.02, Priority: 0}
}

func TestNewEngineValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no machines", func(c *Config) { c.Machines = nil }},
		{"model mismatch", func(c *Config) { c.Models = c.Models[:1] }},
		{"nil characterization", func(c *Config) { c.Char = nil }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testEngineConfig(t)
			tc.mutate(&cfg)
			if _, err := NewEngine(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestEngineDefaults(t *testing.T) {
	e, err := NewEngine(testEngineConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if e.PeriodSeconds() != 300 {
		t.Errorf("period = %v", e.PeriodSeconds())
	}
	if e.NumTaskTypes() != 3 { // gratis short+long, production short
		t.Errorf("task types = %d", e.NumTaskTypes())
	}
	if _, err := e.Plan(); !errors.Is(err, ErrNoPlan) {
		t.Errorf("plan before first tick: %v", err)
	}
}

func TestIngestValidation(t *testing.T) {
	e, err := NewEngine(testEngineConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	nan, inf := math.NaN(), math.Inf(1)
	bad := []trace.Task{
		{ID: 1, Duration: 0, CPU: 0.1, Mem: 0.1},
		{ID: 2, Duration: 60, CPU: 0, Mem: 0.1},
		{ID: 3, Duration: 60, CPU: 0.1, Mem: 1.5},
		{ID: 4, Duration: 60, CPU: 0.1, Mem: 0.1, Priority: 99},
		{ID: 5, Duration: 60, CPU: 0.1, Mem: 0.1, Submit: -1},
		// NaN compares false against everything: the !(x > 0) guards must
		// reject these rather than let them poison the arrival windows.
		{ID: 6, Duration: nan, CPU: 0.1, Mem: 0.1},
		{ID: 7, Duration: 60, CPU: nan, Mem: 0.1},
		{ID: 8, Duration: 60, CPU: 0.1, Mem: nan},
		{ID: 9, Duration: 60, CPU: 0.1, Mem: 0.1, Submit: nan},
		{ID: 10, Duration: inf, CPU: 0.1, Mem: 0.1},
		{ID: 11, Duration: 60, CPU: 0.1, Mem: 0.1, Submit: inf},
		{ID: 12, Duration: -60, CPU: 0.1, Mem: 0.1},
		{ID: 13, Duration: 60, CPU: 0.1, Mem: 0.1, SchedClass: -1},
		{ID: 14, Duration: 60, CPU: 0.1, Mem: 0.1, SchedClass: 4},
	}
	for _, task := range bad {
		if err := e.Ingest(task); err == nil {
			t.Errorf("task %d accepted: %+v", task.ID, task)
		}
	}
	if got := e.Snapshot().TasksIngested; got != 0 {
		t.Errorf("invalid tasks counted: %d", got)
	}
}

// TestDeltaStatsExposed pins the satellite contract: the controller's
// delta-placement counters surface through Snapshot and the registry.
func TestDeltaStatsExposed(t *testing.T) {
	cfg := testEngineConfig(t)
	cfg.Registry = metrics.NewRegistry()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := e.Snapshot(); s.DeltaFullRepacks != 0 || s.DeltaReusedTypes != 0 {
		t.Errorf("pre-tick delta stats = %+v", s)
	}
	for i := 0; i < 20; i++ {
		if err := e.Ingest(gratisTask(uint64(i), float64(i*10), 60)); err != nil {
			t.Fatal(err)
		}
	}
	// The first CBS realization has no previous decision to reuse, so it
	// always books one full repack.
	if _, err := e.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot()
	if s.DeltaFullRepacks < 1 {
		t.Errorf("first tick booked no full repack: %+v", s)
	}
	// A second identical window reuses or repacks types — either way the
	// reuse+repack counters must move once prev exists.
	if _, err := e.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}
	s2 := e.Snapshot()
	if s2.DeltaReusedTypes+s2.DeltaRepackedTypes+s2.DeltaFullRepacks <= s.DeltaReusedTypes+s.DeltaRepackedTypes+s.DeltaFullRepacks {
		t.Errorf("delta counters did not advance: %+v -> %+v", s, s2)
	}
	rendered := cfg.Registry.Render()
	for _, want := range []string{
		"harmonyd_delta_full_repacks",
		"harmonyd_delta_reused_types",
		"harmonyd_delta_repacked_types",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestIngestCountsAndFallback(t *testing.T) {
	e, err := NewEngine(testEngineConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(gratisTask(1, 10, 60)); err != nil {
		t.Fatal(err)
	}
	// Priority 5 is the "other" group, which has no classes in the test
	// characterization: the task must fall back to type 0 and be counted.
	other := trace.Task{ID: 2, Submit: 20, Duration: 60, CPU: 0.05, Mem: 0.05, Priority: 5}
	if err := e.Ingest(other); err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot()
	if s.TasksIngested != 2 {
		t.Errorf("ingested = %d", s.TasksIngested)
	}
	if s.LabelFallbacks != 1 {
		t.Errorf("fallbacks = %d", s.LabelFallbacks)
	}
	if s.TasksByGroup["gratis"] != 1 || s.TasksByGroup["other"] != 1 {
		t.Errorf("by group = %v", s.TasksByGroup)
	}
}

func TestTickProducesPlan(t *testing.T) {
	e, err := NewEngine(testEngineConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := e.Ingest(gratisTask(uint64(i), float64(i*6), 60)); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := e.Tick(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if plan.PeriodIndex != 1 || plan.ModelTime != 300 {
		t.Errorf("plan at period %d time %v", plan.PeriodIndex, plan.ModelTime)
	}
	if plan.Mode != "CBS" {
		t.Errorf("mode = %q", plan.Mode)
	}
	total := 0
	for _, mp := range plan.Machines {
		if mp.Active < 0 || mp.Active > mp.Available {
			t.Errorf("type %d active %d of %d", mp.Type, mp.Active, mp.Available)
		}
		total += mp.Active
	}
	if total != plan.TotalActive {
		t.Errorf("TotalActive %d != sum %d", plan.TotalActive, total)
	}
	if plan.TotalActive == 0 {
		t.Error("no machines provisioned for 50 arrivals")
	}
	got, err := e.Plan()
	if err != nil || got.PeriodIndex != plan.PeriodIndex {
		t.Errorf("Plan() = %+v, %v", got, err)
	}
	s := e.Snapshot()
	if s.Ticks != 1 || s.PeriodIndex != 1 || s.ModelTime != 300 {
		t.Errorf("stats after tick: %+v", s)
	}
}

func TestTickInFlightSkipped(t *testing.T) {
	e, err := NewEngine(testEngineConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	e.solving.Store(true)
	if _, err := e.Tick(context.Background()); !errors.Is(err, ErrTickInFlight) {
		t.Fatalf("want ErrTickInFlight, got %v", err)
	}
	e.solving.Store(false)
	if got := e.Snapshot().TicksSkipped; got != 1 {
		t.Errorf("skipped = %d", got)
	}
	// Once released, ticking works again.
	if _, err := e.Tick(context.Background()); err != nil {
		t.Fatalf("tick after release: %v", err)
	}
}

func TestRelabelShortToLongAcrossTicks(t *testing.T) {
	e, err := NewEngine(testEngineConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	// Duration 500 outlives the gratis short boundary (100 s): after the
	// first tick (model time 300) its age is 300 and it must be
	// relabeled long; after the second (600) it has finished.
	if err := e.Ingest(gratisTask(1, 0, 500)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := e.Snapshot()
	if s.Relabels != 1 {
		t.Errorf("relabels after tick 1 = %d", s.Relabels)
	}
	if s.OpenTasks != 1 {
		t.Errorf("open after tick 1 = %d", s.OpenTasks)
	}
	if _, err := e.Tick(context.Background()); err != nil {
		t.Fatal(err)
	}
	s = e.Snapshot()
	if s.OpenTasks != 0 {
		t.Errorf("open after tick 2 = %d", s.OpenTasks)
	}
	if s.Relabels != 1 {
		t.Errorf("relabels after tick 2 = %d", s.Relabels)
	}
}

func TestTickDeadlinePublishesLate(t *testing.T) {
	e, err := NewEngine(testEngineConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := e.Ingest(gratisTask(uint64(i), float64(i), 60)); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the solve must finish in the background
	_, err = e.Tick(ctx)
	// The solve may beat the cancelled-context branch; both are valid.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("tick error: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, perr := e.Plan(); perr == nil && !e.solving.Load() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("late solve never published a plan")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if plan, perr := e.Plan(); perr != nil || plan.PeriodIndex != 1 {
		t.Fatalf("published plan: %+v, %v", plan, perr)
	}
}

func TestReplayMatchesManualDrive(t *testing.T) {
	cfg := testEngineConfig(t)
	var tasks []trace.Task
	for i := 0; i < 120; i++ {
		tasks = append(tasks, gratisTask(uint64(i), float64(i*7), 90))
	}
	const ticks = 3

	replayPlan, err := Replay(cfg, tasks, ticks)
	if err != nil {
		t.Fatal(err)
	}

	e, err := NewEngine(testEngineConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for k := 1; k <= ticks; k++ {
		for i < len(tasks) && tasks[i].Submit < float64(k)*300 {
			if err := e.Ingest(tasks[i]); err != nil {
				t.Fatal(err)
			}
			i++
		}
		if _, err := e.Tick(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	manualPlan, err := e.Plan()
	if err != nil {
		t.Fatal(err)
	}

	a, _ := json.Marshal(replayPlan)
	b, _ := json.Marshal(manualPlan)
	if string(a) != string(b) {
		t.Errorf("replay and manual plans differ:\n%s\n%s", a, b)
	}
}
