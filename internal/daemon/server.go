package daemon

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"harmony/internal/metrics"
	"harmony/internal/trace"
)

// ServerConfig parameterizes the HTTP front-end.
type ServerConfig struct {
	// QueueSize bounds the ingest queue; tasks beyond it are rejected
	// with 429 (default 65536).
	QueueSize int
	// TickDeadline bounds each control-loop solve (default 30s).
	TickDeadline time.Duration

	// startWorker exists for tests that need the queue to stay full.
	startWorker *bool
}

func (cfg *ServerConfig) defaults() {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 65536
	}
	if cfg.TickDeadline <= 0 {
		cfg.TickDeadline = 30 * time.Second
	}
}

// ingestItem is one unit on the ingest queue: a task, or a barrier that
// closes its channel once every earlier item has been applied.
type ingestItem struct {
	task    trace.Task
	barrier chan struct{}
}

// Server is the HTTP front-end of the daemon: streaming ingest with
// backpressure, the plan/stats endpoints, and Prometheus-style metrics.
type Server struct {
	eng *Engine
	cfg ServerConfig
	mux *http.ServeMux

	queue     chan ingestItem
	workers   sync.WaitGroup
	closeOnce sync.Once

	mQueueDepth *metrics.Gauge
	mRejected   *metrics.Counter
	mIngestErrs *metrics.Counter
	mPanics     *metrics.Counter
	mRequests   *metrics.CounterVec
}

// NewServer wires the engine behind the HTTP API and starts the ingest
// worker that drains the bounded queue into the engine.
func NewServer(eng *Engine, cfg ServerConfig) *Server {
	cfg.defaults()
	s := &Server{
		eng:   eng,
		cfg:   cfg,
		mux:   http.NewServeMux(),
		queue: make(chan ingestItem, cfg.QueueSize),
	}
	r := eng.cfg.Registry
	s.mQueueDepth = r.Gauge("harmonyd_ingest_queue_depth", "Tasks waiting on the ingest queue.")
	s.mRejected = r.Counter("harmonyd_ingest_rejected_total", "Tasks rejected with 429 because the ingest queue was full.")
	s.mIngestErrs = r.Counter("harmonyd_ingest_invalid_total", "Tasks rejected because they failed validation.")
	s.mPanics = r.Counter("harmonyd_panics_recovered_total", "Panics recovered by the HTTP middleware.")
	s.mRequests = r.CounterVec("harmonyd_http_requests_total", "HTTP requests served, by route.", "route")

	s.mux.HandleFunc("POST /v1/tasks", s.handleTasks)
	s.mux.HandleFunc("POST /v1/tick", s.handleTick)
	s.mux.HandleFunc("GET /v1/plan", s.handlePlan)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if cfg.startWorker == nil || *cfg.startWorker {
		s.workers.Add(1)
		go s.ingestWorker()
	}
	return s
}

// Close shuts down the ingest pipeline: the queue is closed so the
// worker drains everything already admitted and exits. Callers must
// stop the HTTP server first — an enqueue racing Close would send on
// the closed queue. Close is idempotent and blocks until the worker
// has exited.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.queue)
		s.workers.Wait()
	})
}

// ServeHTTP implements http.Handler with panic recovery around the mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if v := recover(); v != nil {
			s.mPanics.Inc()
			writeJSONError(w, http.StatusInternalServerError, fmt.Sprintf("panic: %v", v))
		}
	}()
	s.mRequests.With(r.URL.Path).Inc()
	s.mux.ServeHTTP(w, r)
}

// ingestWorker drains the queue into the engine until Close closes it.
func (s *Server) ingestWorker() {
	defer s.workers.Done()
	for item := range s.queue {
		if item.barrier != nil {
			close(item.barrier)
			continue
		}
		if err := s.eng.Ingest(item.task); err != nil {
			s.mIngestErrs.Inc()
		}
		s.mQueueDepth.Set(float64(len(s.queue)))
	}
}

// Flush blocks until every task enqueued before the call has been applied
// to the engine. It is what makes a forced tick observe all prior POSTs.
func (s *Server) Flush() {
	done := make(chan struct{})
	s.queue <- ingestItem{barrier: done}
	<-done
}

// enqueue pushes tasks onto the bounded queue, stopping at the first one
// that does not fit. It returns how many were accepted.
func (s *Server) enqueue(tasks []trace.Task) int {
	for i, t := range tasks {
		select {
		case s.queue <- ingestItem{task: t}:
		default:
			s.mQueueDepth.Set(float64(len(s.queue)))
			return i
		}
	}
	s.mQueueDepth.Set(float64(len(s.queue)))
	return len(tasks)
}

// DecodeTasks parses an ingest request body: a single JSON task object, a
// JSON array of tasks, or an NDJSON stream of task objects. It is shared
// with the multi-tenant front-end so both daemons accept the same wire
// formats.
func DecodeTasks(r io.Reader) ([]trace.Task, error) {
	br := bufio.NewReader(r)
	first, err := peekNonSpace(br)
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("empty body")
		}
		return nil, err
	}
	dec := json.NewDecoder(br)
	var tasks []trace.Task
	if first == '[' {
		if _, err := dec.Token(); err != nil { // consume '['
			return nil, err
		}
		for dec.More() {
			var t trace.Task
			if err := dec.Decode(&t); err != nil {
				return nil, fmt.Errorf("task %d: %w", len(tasks), err)
			}
			tasks = append(tasks, t)
		}
		if _, err := dec.Token(); err != nil { // consume ']'
			return nil, err
		}
		return tasks, nil
	}
	if first != '{' {
		return nil, fmt.Errorf("expected a task object, array, or NDJSON stream")
	}
	// Stream of objects: covers both the single-object and NDJSON cases.
	for {
		var t trace.Task
		if err := dec.Decode(&t); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("task %d: %w", len(tasks), err)
		}
		tasks = append(tasks, t)
	}
	return tasks, nil
}

// peekNonSpace returns the first non-whitespace byte without consuming it.
func peekNonSpace(br *bufio.Reader) (byte, error) {
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		}
		if err := br.UnreadByte(); err != nil {
			return 0, err
		}
		return b, nil
	}
}

type ingestResponse struct {
	Accepted int    `json:"accepted"`
	Rejected int    `json:"rejected,omitempty"`
	Error    string `json:"error,omitempty"`
}

func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	tasks, err := DecodeTasks(r.Body)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	accepted := s.enqueue(tasks)
	resp := ingestResponse{Accepted: accepted, Rejected: len(tasks) - accepted}
	if resp.Rejected > 0 {
		s.mRejected.Add(float64(resp.Rejected))
		resp.Error = "ingest queue full"
		writeJSON(w, http.StatusTooManyRequests, resp)
		return
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// ForceTick flushes the ingest queue and runs one control-period tick
// under the configured deadline.
func (s *Server) ForceTick(parent context.Context) (*Plan, error) {
	s.Flush()
	ctx, cancel := context.WithTimeout(parent, s.cfg.TickDeadline)
	defer cancel()
	return s.eng.Tick(ctx)
}

func (s *Server) handleTick(w http.ResponseWriter, r *http.Request) {
	plan, err := s.ForceTick(r.Context())
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, plan)
	case errors.Is(err, ErrTickInFlight):
		writeJSONError(w, http.StatusConflict, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeJSONError(w, http.StatusGatewayTimeout, err.Error())
	default:
		writeJSONError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) handlePlan(w http.ResponseWriter, _ *http.Request) {
	plan, err := s.eng.Plan()
	if err != nil {
		writeJSONError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, plan)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	stats := s.eng.Snapshot()
	writeJSON(w, http.StatusOK, struct {
		Stats
		QueueDepth    int `json:"queueDepth"`
		QueueCapacity int `json:"queueCapacity"`
		// ForecastBacktest is the rolling-origin one-step MAE per class
		// (tasks/period) of the configured predictor over the recorded
		// arrival windows — the online counterpart of the offline
		// rolling-origin numbers from internal/forecast.
		ForecastBacktest map[string]float64 `json:"forecastBacktest,omitempty"`
	}{stats, len(s.queue), cap(s.queue), s.eng.ForecastBacktest()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	//harmony:allow errflow HTTP response write; the client disconnecting is not an error we can handle
	io.WriteString(w, s.eng.cfg.Registry.Render())
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//harmony:allow errflow HTTP response write; the client disconnecting is not an error we can handle
	_ = enc.Encode(v)
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
