package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"harmony/internal/trace"
)

func newTestServer(t *testing.T, cfg ServerConfig) (*Server, *Engine) {
	t.Helper()
	eng, err := NewEngine(testEngineConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(eng, cfg), eng
}

func taskNDJSON(tasks ...trace.Task) string {
	var sb strings.Builder
	for _, task := range tasks {
		b, _ := json.Marshal(task)
		sb.Write(b)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestDecodeTasksFormats(t *testing.T) {
	one := gratisTask(1, 10, 60)
	two := gratisTask(2, 20, 60)
	oneJSON, _ := json.Marshal(one)
	twoJSON, _ := json.Marshal(two)

	tests := []struct {
		name string
		body string
		want int
	}{
		{"single object", string(oneJSON), 1},
		{"array", fmt.Sprintf("[%s, %s]", oneJSON, twoJSON), 2},
		{"ndjson", taskNDJSON(one, two), 2},
		{"leading whitespace", "\n\t " + string(oneJSON), 1},
		{"empty array", "[]", 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tasks, err := DecodeTasks(strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if len(tasks) != tc.want {
				t.Errorf("decoded %d tasks, want %d", len(tasks), tc.want)
			}
			if tc.want > 0 && tasks[0].ID != 1 {
				t.Errorf("first task = %+v", tasks[0])
			}
		})
	}

	for _, bad := range []string{"", "   ", "not json", "42", `{"id":}`} {
		if _, err := DecodeTasks(strings.NewReader(bad)); err == nil {
			t.Errorf("decoded garbage %q", bad)
		}
	}
}

func TestIngestEndpoint(t *testing.T) {
	s, eng := newTestServer(t, ServerConfig{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/tasks", "application/x-ndjson",
		strings.NewReader(taskNDJSON(gratisTask(1, 10, 60), gratisTask(2, 20, 60))))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var ir ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 2 || ir.Rejected != 0 {
		t.Errorf("response = %+v", ir)
	}
	s.Flush()
	if got := eng.Snapshot().TasksIngested; got != 2 {
		t.Errorf("ingested = %d", got)
	}

	// Malformed body is a 400.
	resp, err = http.Post(srv.URL+"/v1/tasks", "application/json", strings.NewReader("nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage status = %d", resp.StatusCode)
	}
}

func TestIngestBackpressure429(t *testing.T) {
	off := false
	s, _ := newTestServer(t, ServerConfig{QueueSize: 4, startWorker: &off})
	srv := httptest.NewServer(s)
	defer srv.Close()

	var tasks []trace.Task
	for i := 0; i < 10; i++ {
		tasks = append(tasks, gratisTask(uint64(i), float64(i), 60))
	}
	resp, err := http.Post(srv.URL+"/v1/tasks", "application/x-ndjson",
		strings.NewReader(taskNDJSON(tasks...)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	var ir ingestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 4 || ir.Rejected != 6 || ir.Error == "" {
		t.Errorf("response = %+v", ir)
	}

	// The queue drains once the worker runs, and draining frees capacity.
	go s.ingestWorker()
	s.Flush()
	resp, err = http.Post(srv.URL+"/v1/tasks", "application/x-ndjson",
		strings.NewReader(taskNDJSON(gratisTask(99, 99, 60))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("post-drain status = %d", resp.StatusCode)
	}
}

// TestIngestBackpressureConcurrentProducers hammers a small queue from
// concurrent producers and checks the accepted/rejected split adds up
// exactly to the queue capacity — enqueue must not over-admit under
// contention — and that rejections land on the 429 counter.
func TestIngestBackpressureConcurrentProducers(t *testing.T) {
	off := false
	s, _ := newTestServer(t, ServerConfig{QueueSize: 16, startWorker: &off})
	srv := httptest.NewServer(s)
	defer srv.Close()

	const producers, perProducer = 8, 10
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted, rejected := 0, 0
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var tasks []trace.Task
			for i := 0; i < perProducer; i++ {
				tasks = append(tasks, gratisTask(uint64(p*100+i), float64(i), 60))
			}
			resp, err := http.Post(srv.URL+"/v1/tasks", "application/x-ndjson",
				strings.NewReader(taskNDJSON(tasks...)))
			if err != nil {
				t.Errorf("post: %v", err)
				return
			}
			defer resp.Body.Close()
			var ir ingestResponse
			if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
				t.Errorf("decode: %v", err)
				return
			}
			if ir.Rejected > 0 && resp.StatusCode != http.StatusTooManyRequests {
				t.Errorf("rejected %d but status %d", ir.Rejected, resp.StatusCode)
			}
			mu.Lock()
			accepted += ir.Accepted
			rejected += ir.Rejected
			mu.Unlock()
		}(p)
	}
	wg.Wait()

	if accepted != 16 || rejected != producers*perProducer-16 {
		t.Errorf("accepted %d rejected %d, want 16 and %d",
			accepted, rejected, producers*perProducer-16)
	}
	if got := s.mRejected.Value(); got != float64(rejected) {
		t.Errorf("rejected counter = %v, want %d", got, rejected)
	}
	if got := len(s.queue); got != 16 {
		t.Errorf("queue depth = %d, want 16", got)
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	s, _ := newTestServer(t, ServerConfig{})
	s.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body["error"], "kaboom") {
		t.Errorf("error = %q", body["error"])
	}
	// The server keeps serving after the panic.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after panic = %d", resp.StatusCode)
	}
}

func TestTickPlanStatsMetricsEndpoints(t *testing.T) {
	s, _ := newTestServer(t, ServerConfig{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	// No plan before the first tick.
	resp, err := http.Get(srv.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("plan before tick = %d", resp.StatusCode)
	}

	var tasks []trace.Task
	for i := 0; i < 30; i++ {
		tasks = append(tasks, gratisTask(uint64(i), float64(i*10), 60))
	}
	resp, err = http.Post(srv.URL+"/v1/tasks", "application/x-ndjson",
		strings.NewReader(taskNDJSON(tasks...)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Forced tick returns the fresh plan (and has flushed the queue).
	resp, err = http.Post(srv.URL+"/v1/tick", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var tickPlan Plan
	if err := json.NewDecoder(resp.Body).Decode(&tickPlan); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || tickPlan.PeriodIndex != 1 {
		t.Fatalf("tick: status %d plan %+v", resp.StatusCode, tickPlan)
	}

	resp, err = http.Get(srv.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	var gotPlan Plan
	if err := json.NewDecoder(resp.Body).Decode(&gotPlan); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if gotPlan.PeriodIndex != 1 || gotPlan.TotalActive != tickPlan.TotalActive {
		t.Errorf("plan = %+v, tick returned %+v", gotPlan, tickPlan)
	}

	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Stats
		QueueDepth    int `json:"queueDepth"`
		QueueCapacity int `json:"queueCapacity"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.TasksIngested != 30 || stats.Ticks != 1 || stats.QueueCapacity != 65536 {
		t.Errorf("stats = %+v", stats)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	for _, want := range []string{
		"# HELP harmonyd_tasks_ingested_total",
		"harmonyd_ticks_total 1",
		"harmonyd_machines_active",
		"harmonyd_tick_duration_seconds_bucket",
		"harmonyd_ingest_queue_depth",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestStatsForecastBacktest drives enough control periods past the
// rolling-origin training prefix and asserts /v1/stats exposes a
// per-class backtest MAE comparable with the offline numbers.
func TestStatsForecastBacktest(t *testing.T) {
	s, eng := newTestServer(t, ServerConfig{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	type statsResp struct {
		ForecastBacktest map[string]float64 `json:"forecastBacktest"`
	}
	getStats := func() statsResp {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out statsResp
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Before any history accumulates the field is omitted entirely.
	if early := getStats(); len(early.ForecastBacktest) != 0 {
		t.Errorf("backtest before history = %v", early.ForecastBacktest)
	}

	// Drive windows past the training prefix with a mild ramp so the
	// series is not degenerate.
	id := uint64(1)
	for k := 0; k < backtestMinTrain+4; k++ {
		for j := 0; j < 3+k%3; j++ {
			task := gratisTask(id, float64(k)*eng.PeriodSeconds()+float64(j), 60)
			if err := eng.Ingest(task); err != nil {
				t.Fatal(err)
			}
			id++
		}
		if _, err := eng.Tick(context.Background()); err != nil {
			t.Fatalf("tick %d: %v", k+1, err)
		}
	}

	got := getStats()
	mae, ok := got.ForecastBacktest["class0"]
	if !ok {
		t.Fatalf("forecastBacktest missing class0: %v", got.ForecastBacktest)
	}
	if math.IsNaN(mae) || mae < 0 || mae > 100 {
		t.Errorf("class0 backtest MAE = %v, want a small non-negative error", mae)
	}
	// Long sub-types receive no direct arrivals, so only per-class keys
	// (short series) appear.
	for k := range got.ForecastBacktest {
		if !strings.HasPrefix(k, "class") {
			t.Errorf("unexpected backtest key %q", k)
		}
	}
}
