package stats

// Reservoir is a fixed-capacity uniform sample of an unbounded stream
// (Vitter's Algorithm R). It bounds the memory of per-group delay
// statistics in trace-scale simulations: the sample is an unbiased
// estimate of the full empirical distribution while holding at most k
// values, however many observations flow through.
//
// The replacement draws come from a seeded RNG, so the retained sample
// is a pure function of (seed, observation sequence) — reservoir-backed
// results replay bit-identically.
type Reservoir struct {
	k    int
	n    int64
	r    *RNG
	vals []float64
}

// NewReservoir returns a reservoir keeping a uniform sample of at most k
// observations, with replacement decisions drawn from seed.
func NewReservoir(k int, seed int64) *Reservoir {
	if k < 1 {
		k = 1
	}
	return &Reservoir{k: k, r: NewRNG(seed), vals: make([]float64, 0, k)}
}

// Add observes one value. Steady-state (post-fill) adds are
// allocation-free.
func (rv *Reservoir) Add(x float64) {
	rv.n++
	if len(rv.vals) < rv.k {
		rv.vals = append(rv.vals, x)
		return
	}
	if j := rv.r.Int63n(rv.n); j < int64(rv.k) {
		rv.vals[j] = x
	}
}

// Count returns the total number of observations seen (not the retained
// sample size).
func (rv *Reservoir) Count() int64 { return rv.n }

// Values returns the retained sample in insertion-slot order. The slice
// aliases the reservoir's storage; callers must not mutate it.
func (rv *Reservoir) Values() []float64 { return rv.vals }

// CDF builds an empirical CDF over the retained sample.
func (rv *Reservoir) CDF() *CDF { return NewCDF(rv.vals) }
