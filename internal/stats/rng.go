package stats

import (
	"math"
	"math/rand"
)

// RNG is the module-wide deterministic random source. It aliases
// math/rand.Rand so the generator streams (and therefore every committed
// golden figure) are unchanged, but construction is funneled through
// NewRNG: the rngdiscipline analyzer in internal/lint forbids raw
// rand.New/rand.NewSource outside this package, so every stream in the
// codebase is a named, explicitly seeded source.
type RNG = rand.Rand

// NewRNG returns an RNG deterministically seeded with seed. Equal seeds
// yield bit-identical streams on every platform and GOMAXPROCS setting.
func NewRNG(seed int64) *RNG {
	return rand.New(rand.NewSource(seed))
}

// LogNormal draws a log-normal variate with the given parameters of the
// underlying normal (mu, sigma of log X). Task sizes and durations in
// production traces span orders of magnitude; log-normal mixtures are the
// generator's workhorse.
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// BoundedPareto draws from a Pareto distribution with shape alpha truncated
// to [lo, hi] via inverse-transform sampling. It models heavy-tailed task
// durations (the paper reports production tasks running up to 17 days).
func BoundedPareto(r *rand.Rand, alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		return lo
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Exponential draws an exponential variate with the given mean.
func Exponential(r *rand.Rand, mean float64) float64 {
	return r.ExpFloat64() * mean
}

// TruncNormal draws a normal variate with mean mu and stddev sigma,
// resampling until the result lies in [lo, hi]. It falls back to clamping
// after a bounded number of attempts so it cannot loop forever on
// pathological parameters.
func TruncNormal(r *rand.Rand, mu, sigma, lo, hi float64) float64 {
	for i := 0; i < 64; i++ {
		x := mu + sigma*r.NormFloat64()
		if x >= lo && x <= hi {
			return x
		}
	}
	x := mu
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return x
}

// Poisson draws a Poisson variate with the given mean using Knuth's method
// for small means and a normal approximation for large ones.
func Poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation with continuity correction.
		x := math.Round(mean + math.Sqrt(mean)*r.NormFloat64())
		if x < 0 {
			return 0
		}
		return int(x)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// WeightedChoice returns an index in [0, len(weights)) drawn with
// probability proportional to weights[i]. Non-positive total weight
// returns 0.
func WeightedChoice(r *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
