// Package stats provides the numeric substrate shared by all HARMONY
// modules: descriptive statistics, empirical distributions, histograms,
// the standard normal distribution (CDF and quantile), and a small set of
// random-variate generators used by the synthetic trace generator.
//
// Everything in this package is deterministic given its inputs; functions
// that need randomness take an explicit *rand.Rand.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n), or 0 if
// xs has fewer than one element.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n)
}

// SampleVariance returns the unbiased sample variance (dividing by n-1),
// or 0 if xs has fewer than two elements.
func SampleVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs. It returns an error on empty input.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs. It returns an error on empty input.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// CoefVar returns the coefficient of variation (stddev/mean) of xs.
// It returns 0 when the mean is 0.
func CoefVar(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// SquaredCV returns the squared coefficient of variation CV² = Var/Mean²,
// the dispersion measure used in the paper's M/G/c delay formula (Eq. 1).
// It returns 0 when the mean is 0.
func SquaredCV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return Variance(xs) / (m * m)
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It returns an error on empty input
// or p outside [0,100].
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}
