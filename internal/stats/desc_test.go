package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "empty", give: nil, want: 0},
		{name: "single", give: []float64{5}, want: 5},
		{name: "pair", give: []float64{1, 3}, want: 2},
		{name: "negatives", give: []float64{-2, 2, -4, 4}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.give); got != tt.want {
				t.Errorf("Mean(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestSampleVariance(t *testing.T) {
	if got := SampleVariance([]float64{1}); got != 0 {
		t.Errorf("SampleVariance(single) = %v, want 0", got)
	}
	xs := []float64{1, 2, 3, 4}
	// mean 2.5, sum sq dev = 2.25+0.25+0.25+2.25 = 5, /3
	if got := SampleVariance(xs); !almostEq(got, 5.0/3.0, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", got, 5.0/3.0)
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); err == nil {
		t.Error("Min(nil) should error")
	}
	if _, err := Max(nil); err == nil {
		t.Error("Max(nil) should error")
	}
	xs := []float64{3, -1, 7, 0}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Errorf("Min = %v, %v; want -1, nil", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Errorf("Max = %v, %v; want 7, nil", mx, err)
	}
}

func TestCoefVar(t *testing.T) {
	if got := CoefVar([]float64{0, 0}); got != 0 {
		t.Errorf("CoefVar of zeros = %v, want 0", got)
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9} // mean 5, sd 2
	if got := CoefVar(xs); !almostEq(got, 0.4, 1e-12) {
		t.Errorf("CoefVar = %v, want 0.4", got)
	}
	if got := SquaredCV(xs); !almostEq(got, 0.16, 1e-12) {
		t.Errorf("SquaredCV = %v, want 0.16", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{75, 40},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if !almostEq(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("Percentile(empty) should error")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("Percentile(-1) should error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) should error")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	got, err := Percentile(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got, 5, 1e-12) {
		t.Errorf("Percentile(50) of {0,10} = %v, want 5", got)
	}
}

// Property: variance is translation-invariant and scales quadratically.
func TestVarianceProperties(t *testing.T) {
	f := func(raw []float64, shift float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Keep values bounded so float error stays small.
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e3))
		}
		if len(xs) == 0 {
			return true
		}
		shift = math.Mod(shift, 1e3)
		if math.IsNaN(shift) {
			shift = 0
		}
		v := Variance(xs)
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		return almostEq(Variance(shifted), v, 1e-6*(1+v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e6))
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return m >= mn-1e-9 && m <= mx+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
