package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	tests := []struct {
		x    float64
		want float64
	}{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{3, 0.9986501019683699},
	}
	for _, tt := range tests {
		if got := NormalCDF(tt.x); !almostEq(got, tt.want, 1e-12) {
			t.Errorf("NormalCDF(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	tests := []struct {
		p    float64
		want float64
	}{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.99, 2.326347874040841},
		{0.05, -1.6448536269514722},
		{0.001, -3.090232306167813},
	}
	for _, tt := range tests {
		if got := NormalQuantile(tt.p); !almostEq(got, tt.want, 1e-9) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestNormalQuantileEdgeCases(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("NormalQuantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile(1) should be +Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) {
		t.Error("NormalQuantile(-0.1) should be NaN")
	}
	if !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("NormalQuantile(1.1) should be NaN")
	}
}

// Property: quantile inverts the CDF across the useful range.
func TestNormalQuantileInvertsCDF(t *testing.T) {
	for p := 1e-6; p < 1; p += 0.001 {
		x := NormalQuantile(p)
		if got := NormalCDF(x); !almostEq(got, p, 1e-10) {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

// Property: quantile is monotone increasing.
func TestNormalQuantileMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		pa := math.Mod(math.Abs(a), 1)
		pb := math.Mod(math.Abs(b), 1)
		if pa == 0 || pb == 0 || math.IsNaN(pa) || math.IsNaN(pb) {
			return true
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		return NormalQuantile(pa) <= NormalQuantile(pb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalPDFSymmetric(t *testing.T) {
	for _, x := range []float64{0.1, 0.7, 1.3, 2.9} {
		if !almostEq(NormalPDF(x), NormalPDF(-x), 1e-15) {
			t.Errorf("PDF not symmetric at %v", x)
		}
	}
	if !almostEq(NormalPDF(0), 0.3989422804014327, 1e-15) {
		t.Errorf("PDF(0) = %v", NormalPDF(0))
	}
}
