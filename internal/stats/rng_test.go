package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestLogNormalMoments(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 200000
	mu, sigma := 0.0, 0.5
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = LogNormal(r, mu, sigma)
	}
	wantMean := math.Exp(mu + sigma*sigma/2)
	if got := Mean(xs); !almostEq(got, wantMean, 0.02*wantMean) {
		t.Errorf("lognormal mean = %v, want ~%v", got, wantMean)
	}
	for _, x := range xs[:100] {
		if x <= 0 {
			t.Fatalf("lognormal produced non-positive %v", x)
		}
	}
}

func TestBoundedParetoRange(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	lo, hi := 1.0, 1000.0
	for i := 0; i < 10000; i++ {
		x := BoundedPareto(r, 1.1, lo, hi)
		if x < lo || x > hi {
			t.Fatalf("pareto sample %v outside [%v,%v]", x, lo, hi)
		}
	}
	// Degenerate parameters fall back to lo.
	if got := BoundedPareto(r, 0, 1, 10); got != 1 {
		t.Errorf("alpha=0 fallback = %v", got)
	}
	if got := BoundedPareto(r, 1, 5, 5); got != 5 {
		t.Errorf("hi<=lo fallback = %v", got)
	}
}

func TestBoundedParetoSkew(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	below := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if BoundedPareto(r, 1.5, 1, 1000) < 10 {
			below++
		}
	}
	// A heavy-tailed but shape-1.5 Pareto puts the large majority of
	// mass near the lower bound.
	if frac := float64(below) / n; frac < 0.9 {
		t.Errorf("fraction below 10 = %v, want > 0.9", frac)
	}
}

func TestExponentialMean(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += Exponential(r, 4)
	}
	if got := sum / n; !almostEq(got, 4, 0.1) {
		t.Errorf("exp mean = %v, want ~4", got)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		x := TruncNormal(r, 0.5, 0.3, 0, 1)
		if x < 0 || x > 1 {
			t.Fatalf("TruncNormal sample %v outside [0,1]", x)
		}
	}
	// Pathological: mean far outside the range still clamps in range.
	x := TruncNormal(r, 100, 0.001, 0, 1)
	if x < 0 || x > 1 {
		t.Errorf("clamped sample %v outside [0,1]", x)
	}
}

func TestPoissonMean(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, mean := range []float64{0.5, 3, 20, 200} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += Poisson(r, mean)
		}
		got := float64(sum) / n
		if !almostEq(got, mean, 0.05*mean+0.05) {
			t.Errorf("poisson(%v) mean = %v", mean, got)
		}
	}
	if Poisson(r, 0) != 0 {
		t.Error("Poisson(0) should be 0")
	}
	if Poisson(r, -1) != 0 {
		t.Error("Poisson(-1) should be 0")
	}
}

func TestWeightedChoice(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[WeightedChoice(r, weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index chosen %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if !almostEq(frac0, 0.25, 0.02) {
		t.Errorf("index 0 frequency = %v, want ~0.25", frac0)
	}
	// Degenerate weights.
	if got := WeightedChoice(r, []float64{0, 0}); got != 0 {
		t.Errorf("all-zero weights = %d, want 0", got)
	}
	if got := WeightedChoice(r, []float64{-1, -2}); got != 0 {
		t.Errorf("negative weights = %d, want 0", got)
	}
}
