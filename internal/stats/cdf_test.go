package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{2, 0.75},
		{2.5, 0.75},
		{3, 1},
		{10, 1},
	}
	for _, tt := range tests {
		if got := c.P(tt.x); got != tt.want {
			t.Errorf("P(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if got := c.P(1); got != 0 {
		t.Errorf("empty P = %v", got)
	}
	if got := c.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v", got)
	}
	if pts := c.Points(10); pts != nil {
		t.Errorf("empty Points = %v", pts)
	}
}

func TestCDFAddThenQuery(t *testing.T) {
	var c CDF
	for _, x := range []float64{5, 1, 3} {
		c.Add(x)
	}
	if got := c.P(3); got != 2.0/3.0 {
		t.Errorf("P(3) = %v", got)
	}
	c.Add(0)
	if got := c.P(0); got != 0.25 {
		t.Errorf("P(0) after re-add = %v", got)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10},
		{0.25, 10},
		{0.5, 20},
		{0.75, 30},
		{1, 40},
	}
	for _, tt := range tests {
		if got := c.Quantile(tt.q); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points len = %d", len(pts))
	}
	if pts[0].X != 1 || pts[0].Y != 0 {
		t.Errorf("first point = %+v", pts[0])
	}
	if pts[4].X != 5 || pts[4].Y != 1 {
		t.Errorf("last point = %+v", pts[4])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Errorf("points not monotone at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
}

// Property: P is monotone non-decreasing and Quantile roughly inverts P.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		c := NewCDF(xs)
		sort.Float64s(xs)
		prev := -1.0
		for i := 0; i <= 20; i++ {
			x := xs[0] + (xs[n-1]-xs[0])*float64(i)/20
			p := c.P(x)
			if p < prev {
				return false
			}
			prev = p
		}
		// Quantile(P(x)) <= x for every sample x.
		for _, x := range xs {
			if c.Quantile(c.P(x)) > x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeriesRender(t *testing.T) {
	s := Series{Name: "demo", Points: []Point{{X: 1, Y: 2}}}
	out := s.Render()
	if out == "" {
		t.Fatal("empty render")
	}
	if got, want := out[:len("# series: demo")], "# series: demo"; got != want {
		t.Errorf("header = %q", got)
	}
}
