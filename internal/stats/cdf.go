package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution function built from a sample.
// The zero value is empty; use NewCDF or Add then Freeze.
type CDF struct {
	sorted []float64
	frozen bool
}

// NewCDF builds an empirical CDF from sample xs. The input slice is copied.
func NewCDF(xs []float64) *CDF {
	c := &CDF{sorted: make([]float64, len(xs))}
	copy(c.sorted, xs)
	sort.Float64s(c.sorted)
	c.frozen = true
	return c
}

// Add appends a sample point. Adding after the CDF has been queried is
// allowed; the sort is redone lazily on the next query.
func (c *CDF) Add(x float64) {
	c.sorted = append(c.sorted, x)
	c.frozen = false
}

// Len returns the number of sample points.
func (c *CDF) Len() int { return len(c.sorted) }

func (c *CDF) freeze() {
	if !c.frozen {
		sort.Float64s(c.sorted)
		c.frozen = true
	}
}

// P returns the empirical probability P[X <= x], i.e. the fraction of
// sample points that are <= x. It returns 0 for an empty CDF.
func (c *CDF) P(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	c.freeze()
	idx := sort.SearchFloat64s(c.sorted, x)
	// Advance over equal values so P is right-continuous (<=, not <).
	//harmony:allow floateq scanning stored duplicates of x requires exact equality
	for idx < len(c.sorted) && c.sorted[idx] == x {
		idx++
	}
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v such that P[X <= v] >= q,
// for q in (0,1]. For q <= 0 it returns the minimum sample.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	c.freeze()
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(q*float64(len(c.sorted))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Points returns n (x, P[X<=x]) pairs evenly spaced in probability,
// suitable for plotting the CDF curve. n must be >= 2.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n < 2 {
		return nil
	}
	c.freeze()
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		pts = append(pts, Point{X: c.Quantile(q), Y: q})
	}
	return pts
}

// Point is an (x, y) pair in a plotted series.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points, the unit all figure-regeneration
// code produces. Rendering is plain text: one row per point.
type Series struct {
	Name   string
	Points []Point
}

// Render writes the series as aligned text rows, the format the benchmark
// harness prints so the paper's figures can be eyeballed or re-plotted.
func (s Series) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# series: %s (%d points)\n", s.Name, len(s.Points))
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%12.6g %12.6g\n", p.X, p.Y)
	}
	return b.String()
}
