package stats

import (
	"math"
	"reflect"
	"testing"
)

// Before the reservoir fills it keeps everything, in order.
func TestReservoirKeepsPrefixUntilFull(t *testing.T) {
	rv := NewReservoir(5, 1)
	for i := 0; i < 4; i++ {
		rv.Add(float64(i))
	}
	if got, want := rv.Values(), []float64{0, 1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("prefix sample = %v, want %v", got, want)
	}
	if rv.Count() != 4 {
		t.Errorf("count = %d, want 4", rv.Count())
	}
}

// Equal seeds and input sequences must retain bit-identical samples.
func TestReservoirDeterministic(t *testing.T) {
	a, b := NewReservoir(64, 7), NewReservoir(64, 7)
	for i := 0; i < 10000; i++ {
		x := float64(i) * 1.5
		a.Add(x)
		b.Add(x)
	}
	if !reflect.DeepEqual(a.Values(), b.Values()) {
		t.Error("same seed and stream retained different samples")
	}
	c := NewReservoir(64, 8)
	for i := 0; i < 10000; i++ {
		c.Add(float64(i) * 1.5)
	}
	if reflect.DeepEqual(a.Values(), c.Values()) {
		t.Error("different seeds retained identical samples (suspicious)")
	}
}

// The retained sample approximates the stream's distribution: the mean
// of a uniform 0..N-1 stream should land near N/2.
func TestReservoirUnbiasedMean(t *testing.T) {
	const n = 200000
	rv := NewReservoir(2000, 3)
	for i := 0; i < n; i++ {
		rv.Add(float64(i))
	}
	sum := 0.0
	for _, v := range rv.Values() {
		sum += v
	}
	mean := sum / float64(len(rv.Values()))
	if want := float64(n) / 2; math.Abs(mean-want)/want > 0.05 {
		t.Errorf("sample mean %.0f, want within 5%% of %.0f", mean, want)
	}
	if rv.Count() != n {
		t.Errorf("count = %d, want %d", rv.Count(), n)
	}
}

// Post-fill adds must not allocate: the reservoir backs the simulator's
// hot path.
func TestReservoirSteadyStateAllocFree(t *testing.T) {
	rv := NewReservoir(128, 9)
	for i := 0; i < 256; i++ {
		rv.Add(float64(i))
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			rv.Add(float64(i))
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Add allocates %.0f objects per run, want 0", allocs)
	}
}
