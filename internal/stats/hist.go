package stats

import (
	"errors"
	"math"
)

// Histogram counts samples into equal-width bins over [lo, hi). Samples
// outside the range are clamped into the first or last bin so no data is
// silently dropped.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with nbins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) (*Histogram, error) {
	if nbins <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if !(lo < hi) {
		return nil, errors.New("stats: histogram needs lo < hi")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Density returns the normalized density of bin i (fraction of samples per
// unit of x), or 0 when the histogram is empty.
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / float64(h.total) / w
}

// TimeBinner accumulates (time, value) observations into fixed-width time
// bins, producing a time series of per-bin sums. It is used to turn raw
// trace events into the demand/arrival-rate curves of Figures 1, 2 and 19.
type TimeBinner struct {
	Width float64 // bin width in the same unit as t
	Sums  []float64
}

// NewTimeBinner creates a binner with the given bin width (> 0).
func NewTimeBinner(width float64) (*TimeBinner, error) {
	if width <= 0 {
		return nil, errors.New("stats: time bin width must be positive")
	}
	return &TimeBinner{Width: width}, nil
}

// Observe adds value v at time t >= 0. Bins are grown on demand.
func (b *TimeBinner) Observe(t, v float64) {
	if t < 0 || math.IsNaN(t) {
		return
	}
	idx := int(t / b.Width)
	for idx >= len(b.Sums) {
		b.Sums = append(b.Sums, 0)
	}
	b.Sums[idx] += v
}

// Series converts the accumulated bins into a plottable Series, with X the
// bin start time and Y the bin sum.
func (b *TimeBinner) Series(name string) Series {
	pts := make([]Point, len(b.Sums))
	for i, s := range b.Sums {
		pts[i] = Point{X: float64(i) * b.Width, Y: s}
	}
	return Series{Name: name, Points: pts}
}

// RateSeries is like Series but divides each bin sum by the bin width,
// turning event counts into rates (events per time unit).
func (b *TimeBinner) RateSeries(name string) Series {
	pts := make([]Point, len(b.Sums))
	for i, s := range b.Sums {
		pts[i] = Point{X: float64(i) * b.Width, Y: s / b.Width}
	}
	return Series{Name: name, Points: pts}
}
