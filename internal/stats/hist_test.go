package stats

import (
	"math/rand"
	"testing"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins should error")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("lo == hi should error")
	}
	if _, err := NewHistogram(2, 1, 4); err == nil {
		t.Error("lo > hi should error")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 0.5, 5, 9.99, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	// -3 clamps to bin 0; 42 clamps to bin 9.
	if h.Counts[0] != 3 {
		t.Errorf("bin0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[9] != 2 {
		t.Errorf("bin9 = %d, want 2", h.Counts[9])
	}
	if h.Counts[5] != 1 {
		t.Errorf("bin5 = %d, want 1", h.Counts[5])
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	h, _ := NewHistogram(0, 1, 20)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		h.Add(r.Float64())
	}
	w := 1.0 / 20
	sum := 0.0
	for i := range h.Counts {
		sum += h.Density(i) * w
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Errorf("density integral = %v", sum)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h, _ := NewHistogram(0, 10, 10)
	if got := h.BinCenter(0); got != 0.5 {
		t.Errorf("BinCenter(0) = %v", got)
	}
	if got := h.BinCenter(9); got != 9.5 {
		t.Errorf("BinCenter(9) = %v", got)
	}
}

func TestTimeBinner(t *testing.T) {
	if _, err := NewTimeBinner(0); err == nil {
		t.Error("zero width should error")
	}
	b, err := NewTimeBinner(10)
	if err != nil {
		t.Fatal(err)
	}
	b.Observe(0, 1)
	b.Observe(5, 2)
	b.Observe(10, 4)
	b.Observe(25, 8)
	b.Observe(-1, 100) // dropped
	if len(b.Sums) != 3 {
		t.Fatalf("bins = %d, want 3", len(b.Sums))
	}
	if b.Sums[0] != 3 || b.Sums[1] != 4 || b.Sums[2] != 8 {
		t.Errorf("sums = %v", b.Sums)
	}

	s := b.Series("demand")
	if len(s.Points) != 3 || s.Points[1].X != 10 || s.Points[1].Y != 4 {
		t.Errorf("series = %+v", s)
	}
	rs := b.RateSeries("rate")
	if rs.Points[2].Y != 0.8 {
		t.Errorf("rate = %v, want 0.8", rs.Points[2].Y)
	}
}
