package harmony

import (
	"fmt"
	"math"

	"harmony/internal/classify"
	"harmony/internal/core"
	"harmony/internal/energy"
	"harmony/internal/lp"
	"harmony/internal/sched"
	"harmony/internal/sim"
	"harmony/internal/stats"
	"harmony/internal/trace"
)

// ControlPathOp is one timed micro-operation of the per-period control
// path (forecast → CBS-RELAX → rounding → placement). The operations are
// built over fixed, seeded scenarios so successive baseline captures
// measure the same work.
type ControlPathOp struct {
	// Name identifies the operation in BENCH_control_path.json.
	Name string
	// Run executes the operation iters times.
	Run func(iters int) error
}

// ControlPathOpNames lists the operations ControlPathOps builds, in
// order. It is cheap (no scenario setup), so callers that only need to
// validate a recorded baseline against the current op set can use it
// without paying for LP solves.
func ControlPathOpNames() []string {
	return []string{"relax-cold-mpc", "relax-warm-mpc", "placement", "placement-delta", "harmony-period-tick"}
}

// ControlPathOps builds the control-path micro-benchmarks behind
// harmony-bench's -benchjson mode:
//
//   - relax-cold-mpc: one steady-state MPC period solved from a cold
//     Big-M start (4 machine types, 10 container types, 6-period horizon).
//   - relax-warm-mpc: the same period seeded from the previous period's
//     optimal basis — the cost every period after the first actually pays.
//   - placement: the parallel per-type First-Fit rounding pass against a
//     fixed fractional plan (12 machine types), repacking from scratch.
//   - placement-delta: the incremental rounding pass on a steady-state
//     low-churn period (20 machine types, one of which — 5% — changes
//     per period), diffed against the previous period's decision.
//   - harmony-period-tick: a full scheduler tick — record arrivals,
//     forecast, M/G/c sizing, warm CBS-RELAX solve, and placement.
func ControlPathOps() ([]ControlPathOp, error) {
	prev, next, err := mpcPair()
	if err != nil {
		return nil, fmt.Errorf("mpc scenario: %w", err)
	}
	var basis *lp.Basis
	if _, basis, err = core.SolveRelaxedWarm(prev, nil); err != nil {
		return nil, fmt.Errorf("mpc warm basis: %w", err)
	}

	r := stats.NewRNG(7)
	placeIn := controlPathInput(r, 12, 8, 2)
	placePlan, err := core.SolveRelaxed(placeIn)
	if err != nil {
		return nil, fmt.Errorf("placement scenario: %w", err)
	}
	placeCtrl := &core.Controller{
		Machines: placeIn.Machines, Containers: placeIn.Containers,
		PeriodSeconds: placeIn.PeriodSeconds, Horizon: placeIn.Horizon, Mode: core.CBS,
	}

	deltaCtrl, deltaPlans, deltaDecs, err := deltaScenario(stats.NewRNG(7))
	if err != nil {
		return nil, fmt.Errorf("placement-delta scenario: %w", err)
	}

	policy, obs, err := tickScenario()
	if err != nil {
		return nil, fmt.Errorf("tick scenario: %w", err)
	}

	return []ControlPathOp{
		{Name: "relax-cold-mpc", Run: func(iters int) error {
			for i := 0; i < iters; i++ {
				if _, err := core.SolveRelaxed(next); err != nil {
					return err
				}
			}
			return nil
		}},
		{Name: "relax-warm-mpc", Run: func(iters int) error {
			for i := 0; i < iters; i++ {
				if _, _, err := core.SolveRelaxedWarm(next, basis); err != nil {
					return err
				}
			}
			return nil
		}},
		{Name: "placement", Run: func(iters int) error {
			for i := 0; i < iters; i++ {
				if _, err := placeCtrl.Realize(placePlan); err != nil {
					return err
				}
			}
			return nil
		}},
		{Name: "placement-delta", Run: func(iters int) error {
			// Alternate between the two periods so every realization
			// sees the steady-state churn: one machine type in twenty
			// changed since the decision it is diffed against.
			for i := 0; i < iters; i++ {
				if _, err := deltaCtrl.RealizeDelta(deltaDecs[i%2], deltaPlans[1-i%2]); err != nil {
					return err
				}
			}
			return nil
		}},
		{Name: "harmony-period-tick", Run: func(iters int) error {
			for i := 0; i < iters; i++ {
				if dir := policy.Period(obs); dir.TargetActive == nil {
					return fmt.Errorf("tick produced no decision: %w", policy.Err())
				}
			}
			return nil
		}},
	}, nil
}

// deltaScenario builds the steady-state low-churn placement pair behind
// the placement-delta op: a 20-machine-type fractional plan and a second
// period in which exactly one type — 5% of the fleet — changed, plus the
// cold decisions of both periods so every delta realization diffs
// against the other period's decision.
func deltaScenario(r *stats.RNG) (*core.Controller, [2]*core.Plan, [2]*core.Decision, error) {
	var plans [2]*core.Plan
	var decs [2]*core.Decision
	in := controlPathInput(r, 20, 8, 2)
	planA, err := core.SolveRelaxed(in)
	if err != nil {
		return nil, plans, decs, err
	}
	ctrl := &core.Controller{
		Machines: in.Machines, Containers: in.Containers,
		PeriodSeconds: in.PeriodSeconds, Horizon: in.Horizon, Mode: core.CBS,
	}
	planB := churnOnePlacementType(in, planA)
	decA, err := ctrl.Realize(planA)
	if err != nil {
		return nil, plans, decs, err
	}
	decB, err := ctrl.Realize(planB)
	if err != nil {
		return nil, plans, decs, err
	}
	plans = [2]*core.Plan{planA, planB}
	decs = [2]*core.Decision{decA, decB}
	return ctrl, plans, decs, nil
}

// churnOnePlacementType returns a copy of plan with the busiest machine
// type's period-0 allocation halved — the shape of a low-churn MPC drift
// where one type's demand moved and every other type's placement
// projection is unchanged. Only the churned rows are copied; placement
// treats the plan as read-only.
func churnOnePlacementType(in *core.PlanInput, plan *core.Plan) *core.Plan {
	busiest, most := 0, -1.0
	for m := range in.Machines {
		total := 0.0
		for n := range in.Containers {
			total += math.Floor(plan.Alloc[m][n][0] + 1e-9)
		}
		if total > most {
			busiest, most = m, total
		}
	}
	out := &core.Plan{
		Active:    plan.Active,
		Alloc:     append([][][]float64(nil), plan.Alloc...),
		Scheduled: plan.Scheduled,
		Objective: plan.Objective,
	}
	row := make([][]float64, len(plan.Alloc[busiest]))
	for n, col := range plan.Alloc[busiest] {
		nc := append([]float64(nil), col...)
		nc[0] *= 0.5
		row[n] = nc
	}
	out.Alloc[busiest] = row
	return out
}

// mpcPair returns two consecutive MPC periods of a fixed mid-size
// scenario, advanced a few control periods first so the pair reflects the
// steady state: the forecast window slid by one, the initial machine
// state taken from the realized decision.
func mpcPair() (*core.PlanInput, *core.PlanInput, error) {
	r := stats.NewRNG(42)
	in := controlPathInput(r, 4, 10, 6)
	ctrl := &core.Controller{
		Machines: in.Machines, Containers: in.Containers,
		PeriodSeconds: in.PeriodSeconds, Horizon: in.Horizon, Mode: core.CBS,
	}
	for period := 0; ; period++ {
		plan, err := core.SolveRelaxed(in)
		if err != nil {
			return nil, nil, err
		}
		dec, err := ctrl.Realize(plan)
		if err != nil {
			return nil, nil, err
		}
		next := shiftControlWindow(r, in, dec)
		if period == 3 {
			return in, next, nil
		}
		in = next
	}
}

// shiftControlWindow builds period t+1's input from period t's: the
// forecast window slides by one, the tail extrapolates with mild noise,
// and the initial machine state is the decision just realized.
func shiftControlWindow(r *stats.RNG, in *core.PlanInput, dec *core.Decision) *core.PlanInput {
	out := &core.PlanInput{
		PeriodSeconds: in.PeriodSeconds, Horizon: in.Horizon,
		Machines: in.Machines, Containers: in.Containers,
		Demand:        make([][]float64, len(in.Demand)),
		Price:         make([]float64, len(in.Price)),
		InitialActive: make([]float64, len(in.InitialActive)),
	}
	for n, row := range in.Demand {
		out.Demand[n] = make([]float64, len(row))
		copy(out.Demand[n], row[1:])
		tail := row[len(row)-1] * (0.95 + r.Float64()*0.1)
		if tail < 0 {
			tail = 0
		}
		out.Demand[n][len(row)-1] = float64(int(tail))
	}
	copy(out.Price, in.Price[1:])
	last := len(in.Price) - 1
	out.Price[last] = in.Price[last] * (0.98 + r.Float64()*0.04)
	for m := range out.InitialActive {
		out.InitialActive[m] = float64(dec.ActiveMachines[m])
	}
	return out
}

// controlPathInput generates a random but seeded CBS-RELAX instance with
// nm machine types, nn container types, and a w-period horizon.
func controlPathInput(r *stats.RNG, nm, nn, w int) *core.PlanInput {
	in := &core.PlanInput{PeriodSeconds: 300, Horizon: w}
	for m := 0; m < nm; m++ {
		in.Machines = append(in.Machines, core.MachineSpec{
			Type:       m + 1,
			CPU:        0.3 + r.Float64()*0.7,
			Mem:        0.3 + r.Float64()*0.7,
			Available:  20 + r.Intn(60),
			IdleWatts:  50 + r.Float64()*250,
			AlphaCPU:   50 + r.Float64()*250,
			AlphaMem:   10 + r.Float64()*80,
			SwitchCost: r.Float64() * 0.01,
		})
	}
	for n := 0; n < nn; n++ {
		in.Containers = append(in.Containers, core.ContainerSpec{
			Type:  n,
			CPU:   0.02 + r.Float64()*0.3,
			Mem:   0.02 + r.Float64()*0.3,
			Value: 0.05 + r.Float64()*0.2,
			Omega: 1 + r.Float64()*0.3,
		})
	}
	in.Demand = make([][]float64, nn)
	for n := range in.Demand {
		in.Demand[n] = make([]float64, w)
		for t := range in.Demand[n] {
			in.Demand[n][t] = float64(r.Intn(150))
		}
	}
	in.Price = make([]float64, w)
	for t := range in.Price {
		in.Price[t] = 0.05 + r.Float64()*0.1
	}
	in.InitialActive = make([]float64, nm)
	for m := range in.InitialActive {
		in.InitialActive[m] = float64(r.Intn(in.Machines[m].Available))
	}
	return in
}

// tickScenario builds a Harmony policy over a scaled Table II cluster and
// drives it to its steady state (warm LP basis, M/G/c hints, scratch
// buffers), the way a long simulation or daemon run sees every tick.
func tickScenario() (*sched.Harmony, *sim.Observation, error) {
	models := energy.TableII()
	machines := make([]trace.MachineType, len(models))
	for i := range models {
		models[i].Count /= 100
		if models[i].Count < 1 {
			models[i].Count = 1
		}
		machines[i] = models[i].MachineType(i + 1)
	}
	types := []classify.TaskType{
		{ID: classify.TypeID{Class: 0, Sub: 0}, Group: trace.Gratis,
			CPU: 0.01, Mem: 0.01, CPUStd: 0.004, MemStd: 0.004,
			MeanDuration: 60, SqCV: 1.2, Count: 100},
		{ID: classify.TypeID{Class: 1, Sub: 0}, Group: trace.Other,
			CPU: 0.05, Mem: 0.04, CPUStd: 0.02, MemStd: 0.02,
			MeanDuration: 120, SqCV: 1.5, Count: 80},
		{ID: classify.TypeID{Class: 2, Sub: 1}, Group: trace.Production,
			CPU: 0.2, Mem: 0.15, CPUStd: 0.05, MemStd: 0.05,
			MeanDuration: 7200, SqCV: 0.8, Count: 20},
	}
	h, err := sched.NewHarmony(sched.HarmonyConfig{
		Mode:          core.CBS,
		Machines:      machines,
		Models:        models,
		Types:         types,
		PeriodSeconds: 300,
		Horizon:       2,
		Predictor:     sched.PredictEWMA,
	})
	if err != nil {
		return nil, nil, err
	}
	obs := &sim.Observation{
		Arrivals: []int{240, 90, 12},
		Queued:   []int{3, 1, 0},
		Running:  []int{15, 8, 4},
		Active:   make([]int, len(machines)),
		Price:    0.08,
	}
	for i := 0; i < 6; i++ {
		if dir := h.Period(obs); dir.TargetActive == nil {
			return nil, nil, fmt.Errorf("warm-up period %d: %w", i, h.Err())
		}
		obs.Time += 300
	}
	return h, obs, nil
}
