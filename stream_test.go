package harmony

import (
	"reflect"
	"testing"
)

// TestSimulateStreamMatchesBatch pins that the streaming entry point is
// the same simulation as the batch one: identical workload parameters
// with exact delay CDFs must produce identical public results.
func TestSimulateStreamMatchesBatch(t *testing.T) {
	wcfg := WorkloadConfig{
		Seed:           11,
		Hours:          3,
		TasksPerSecond: 0.3,
		Cluster:        ClusterTableII,
		ClusterScale:   100,
	}
	for _, policy := range []Policy{PolicyAlwaysOn, PolicyBaseline} {
		simCfg := SimulationConfig{Policy: policy}

		w, err := GenerateWorkload(wcfg)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := Simulate(w, nil, simCfg)
		if err != nil {
			t.Fatalf("%v batch: %v", policy, err)
		}

		stream, metrics, err := SimulateStream(StreamConfig{
			Workload:        wcfg,
			ChunkSize:       512,
			MaxDelaySamples: -1, // exact CDFs, comparable to batch
		}, nil, simCfg)
		if err != nil {
			t.Fatalf("%v stream: %v", policy, err)
		}

		if !reflect.DeepEqual(batch, stream) {
			t.Errorf("%v: streaming result differs from batch\nbatch:  %+v\nstream: %+v",
				policy, batch, stream)
		}
		if metrics.Tasks != int64(w.NumTasks()) {
			t.Errorf("%v: metered %d tasks, workload has %d", policy, metrics.Tasks, w.NumTasks())
		}
		if metrics.TasksPerSecond <= 0 || metrics.PeakHeapBytes == 0 || metrics.BytesPerTask <= 0 {
			t.Errorf("%v: implausible scale metrics %+v", policy, metrics)
		}
	}
}

// TestSimulateStreamCBS exercises the HARMONY policy path: the
// characterization comes from a materialized sample of the same
// workload, the stream itself is never held in memory.
func TestSimulateStreamCBS(t *testing.T) {
	wcfg := WorkloadConfig{
		Seed:           11,
		Hours:          2,
		TasksPerSecond: 0.3,
		Cluster:        ClusterTableII,
		ClusterScale:   100,
	}
	w, err := GenerateWorkload(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := w.Characterize(CharacterizeConfig{Seed: wcfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := SimulateStream(StreamConfig{Workload: wcfg}, ch, SimulationConfig{Policy: PolicyCBS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled == 0 || res.Containers == nil {
		t.Errorf("CBS stream run looks empty: %+v", res)
	}
}

// TestSimulateStreamValidation covers the error paths.
func TestSimulateStreamValidation(t *testing.T) {
	if _, _, err := SimulateStream(StreamConfig{
		Workload: WorkloadConfig{Cluster: Cluster(99)},
	}, nil, SimulationConfig{Policy: PolicyAlwaysOn}); err == nil {
		t.Error("bogus cluster accepted")
	}
	if _, _, err := SimulateStream(StreamConfig{}, nil, SimulationConfig{Policy: PolicyCBS}); err == nil {
		t.Error("CBS without characterization accepted")
	}
	if _, _, err := SimulateStream(StreamConfig{}, nil, SimulationConfig{Policy: Policy(42)}); err == nil {
		t.Error("bogus policy accepted")
	}
}

// TestStreamConfigDefaults pins the default knobs.
func TestStreamConfigDefaults(t *testing.T) {
	var cfg StreamConfig
	cfg.defaults()
	if cfg.ChunkSize != 4096 || cfg.MaxDelaySamples != 100_000 || cfg.SampleEveryTasks != 65536 {
		t.Errorf("defaults = %+v", cfg)
	}
	exact := StreamConfig{MaxDelaySamples: -1}
	exact.defaults()
	if exact.MaxDelaySamples != 0 {
		t.Errorf("MaxDelaySamples -1 should map to exact (0), got %d", exact.MaxDelaySamples)
	}
}
