GO ?= go

.PHONY: build vet lint test race bench bench-baseline sim-scale-baseline check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# go vet plus the repo's own determinism/concurrency analyzers
# (internal/lint, see DESIGN.md §9 and §12), and a drift check that the
# shipped analyzer set still matches the documented one. The binary is
# built once so the module isn't recompiled per invocation.
lint: vet
	$(GO) build -o bin/harmony-lint ./cmd/harmony-lint
	./bin/harmony-lint -timing -timing-budget 120s ./...
	./bin/harmony-lint -list | diff -u cmd/harmony-lint/testdata/analyzers.txt -

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark, as a does-it-run smoke pass.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Re-measure the control-path micro-benchmarks and overwrite the tracked
# baseline (BENCH_control_path.json). Run on a quiet machine and commit
# the result whenever the control path changes materially.
bench-baseline:
	$(GO) run ./cmd/harmony-bench -benchjson BENCH_control_path.json

# Re-run the 1M+-task streaming simulation and overwrite the tracked
# scale baseline (BENCH_sim_scale.json): throughput, allocation per
# task, and the live-heap peak of a full-cluster streamed run.
sim-scale-baseline:
	$(GO) run ./cmd/harmony-bench -simscale-json BENCH_sim_scale.json -hours 13 -rate 10.1 -scale 1

check: build lint race bench
