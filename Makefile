GO ?= go

.PHONY: build vet test race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark, as a does-it-run smoke pass.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

check: build vet race bench
