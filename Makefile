GO ?= go

.PHONY: build vet lint test race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# go vet plus the repo's own determinism/concurrency analyzers
# (internal/lint, see DESIGN.md §9).
lint: vet
	$(GO) run ./cmd/harmony-lint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark, as a does-it-run smoke pass.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

check: build lint race bench
