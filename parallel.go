package harmony

import "sync"

// runAll runs every function on its own goroutine and waits for all of
// them to finish. The returned error is the first non-nil error in
// argument order, so the outcome never depends on goroutine
// interleaving. Functions must be safe to run concurrently with each
// other; the Env accessors are (their caches are Once-guarded).
func runAll(fns ...func() error) error {
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for i, fn := range fns {
		go func() {
			defer wg.Done()
			errs[i] = fn()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
