package harmony

import (
	"strings"
	"testing"
)

func testWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := GenerateWorkload(WorkloadConfig{
		Seed:           11,
		Hours:          3,
		TasksPerSecond: 0.3,
		Cluster:        ClusterTableII,
		ClusterScale:   100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateWorkloadDefaultsAndValidation(t *testing.T) {
	w, err := GenerateWorkload(WorkloadConfig{Seed: 1, Hours: 1, TasksPerSecond: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if w.NumMachines() != 10000 {
		t.Errorf("default Table II machines = %d, want 10000", w.NumMachines())
	}
	if w.NumTasks() == 0 {
		t.Error("no tasks generated")
	}
	if _, err := GenerateWorkload(WorkloadConfig{Cluster: Cluster(99)}); err == nil {
		t.Error("bogus cluster accepted")
	}
}

func TestGenerateWorkloadGoogleLike(t *testing.T) {
	w, err := GenerateWorkload(WorkloadConfig{
		Seed: 2, Hours: 1, TasksPerSecond: 0.2,
		Cluster: ClusterGoogleLike, ClusterScale: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.Trace.Machines); got != 10 {
		t.Errorf("google-like machine types = %d, want 10", got)
	}
	if len(w.Models) != 10 {
		t.Errorf("models = %d, want 10", len(w.Models))
	}
}

func TestCharacterizeFacade(t *testing.T) {
	w := testWorkload(t)
	ch, err := w.Characterize(CharacterizeConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	classes := ch.Classes()
	if len(classes) == 0 {
		t.Fatal("no classes")
	}
	total := 0
	for _, cl := range classes {
		total += cl.Count
		if len(cl.SubDurations) == 0 || len(cl.SubDurations) != len(cl.SubCounts) {
			t.Errorf("class %d sub info inconsistent", cl.ID)
		}
	}
	if total != w.NumTasks() {
		t.Errorf("classified %d of %d tasks", total, w.NumTasks())
	}
	if ch.NumTaskTypes() < len(classes) {
		t.Error("fewer task types than classes")
	}
}

func TestSimulatePolicies(t *testing.T) {
	w := testWorkload(t)
	ch, err := w.Characterize(CharacterizeConfig{Seed: 3, MaxClassesPerGroup: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{PolicyAlwaysOn, PolicyBaseline, PolicyCBP, PolicyCBS} {
		res, err := Simulate(w, ch, SimulationConfig{Policy: p, PeriodSeconds: 300})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Policy == "" {
			t.Errorf("%v: empty policy name", p)
		}
		if res.Scheduled+res.Unscheduled != w.NumTasks() {
			t.Errorf("%v: task conservation broken: %d + %d != %d",
				p, res.Scheduled, res.Unscheduled, w.NumTasks())
		}
		if res.EnergyKWh <= 0 {
			t.Errorf("%v: no energy recorded", p)
		}
		if len(res.DelayCDF) != 3 {
			t.Errorf("%v: delay CDFs = %d", p, len(res.DelayCDF))
		}
		if len(res.ActiveMachines.Points) == 0 {
			t.Errorf("%v: empty active series", p)
		}
		if p == PolicyCBS || p == PolicyCBP {
			if res.Containers == nil {
				t.Errorf("%v: no container series", p)
			}
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	w := testWorkload(t)
	if _, err := Simulate(nil, nil, SimulationConfig{Policy: PolicyBaseline}); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := Simulate(w, nil, SimulationConfig{Policy: PolicyCBS}); err == nil {
		t.Error("CBS without characterization accepted")
	}
	if _, err := Simulate(w, nil, SimulationConfig{Policy: Policy(42)}); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestPolicyString(t *testing.T) {
	tests := []struct {
		p    Policy
		want string
	}{
		{PolicyBaseline, "baseline"},
		{PolicyCBS, "harmony-CBS"},
		{PolicyCBP, "harmony-CBP"},
		{PolicyAlwaysOn, "always-on"},
		{Policy(9), "Policy(9)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.p), got, tt.want)
		}
	}
}

func TestSeriesRender(t *testing.T) {
	s := Series{Name: "x", Points: []Point{{X: 1, Y: 2}, {X: 3, Y: 4}}}
	out := s.Render()
	if !strings.Contains(out, "# series: x (2 points)") {
		t.Errorf("render header missing: %q", out)
	}
}

func TestEnvAnalysisExperiments(t *testing.T) {
	env := NewEnv(
		WorkloadConfig{Seed: 5, Hours: 2, TasksPerSecond: 0.3, ClusterScale: 100},
		CharacterizeConfig{Seed: 5, MaxClassesPerGroup: 4},
		SimulationConfig{PeriodSeconds: 300},
	)
	// The cheap analysis experiments (no policy simulations).
	for _, id := range []string{"fig1", "fig2", "fig5", "fig6", "fig7", "fig9", "fig10-12", "fig13-17", "fig14-18", "fig19"} {
		exp, err := env.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if exp.ID == "" || exp.Title == "" {
			t.Errorf("%s: missing metadata", id)
		}
		if len(exp.Series) == 0 {
			t.Errorf("%s: no series", id)
		}
		if out := exp.Render(); !strings.Contains(out, exp.ID) {
			t.Errorf("%s: render missing id", id)
		}
	}
	if _, err := env.Run("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentIDsRunnable(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 17 {
		t.Errorf("experiment ids = %d, want 17", len(ids))
	}
	seen := make(map[string]bool)
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestSimulateForecasterValidation(t *testing.T) {
	w := testWorkload(t)
	ch, err := w.Characterize(CharacterizeConfig{Seed: 3, MaxClassesPerGroup: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(w, ch, SimulationConfig{Policy: PolicyCBS, Forecaster: "crystal-ball"}); err == nil {
		t.Error("unknown forecaster accepted")
	}
	for _, f := range []string{"", "arima", "auto-arima", "seasonal", "ewma"} {
		if _, err := Simulate(w, ch, SimulationConfig{Policy: PolicyCBS, Forecaster: f}); err != nil {
			t.Errorf("forecaster %q rejected: %v", f, err)
		}
	}
}

func TestCharacterizationSaveLoadFacade(t *testing.T) {
	w := testWorkload(t)
	ch, err := w.Characterize(CharacterizeConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := ch.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCharacterization(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumTaskTypes() != ch.NumTaskTypes() {
		t.Errorf("task types = %d, want %d", loaded.NumTaskTypes(), ch.NumTaskTypes())
	}
	// A loaded characterization drives a simulation.
	if _, err := Simulate(w, loaded, SimulationConfig{Policy: PolicyCBP}); err != nil {
		t.Errorf("simulate with loaded characterization: %v", err)
	}
}
