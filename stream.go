package harmony

import (
	"fmt"
	"runtime"
	"time"

	"harmony/internal/sim"
	"harmony/internal/trace"
)

// StreamConfig parameterizes a streaming simulation run: the workload is
// generated chunk by chunk and consumed in submit order, so peak memory
// is O(live tasks + machines) instead of O(trace length). A 25M-task
// Google-scale month fits on a laptop this way.
type StreamConfig struct {
	// Workload selects the generator parameters and cluster population,
	// exactly as GenerateWorkload interprets them.
	Workload WorkloadConfig
	// ChunkSize is the generator refill granularity in tasks
	// (default 4096).
	ChunkSize int
	// MaxDelaySamples caps the per-group scheduling-delay samples kept
	// for the CDFs, via seeded reservoir sampling. Default 100 000;
	// a negative value keeps every sample (exact CDFs, O(tasks) memory).
	MaxDelaySamples int
	// SampleEveryTasks is how often the scale meter reads the heap for
	// the peak-heap proxy (default every 65 536 tasks).
	SampleEveryTasks int64
}

func (cfg *StreamConfig) defaults() {
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 4096
	}
	switch {
	case cfg.MaxDelaySamples == 0:
		cfg.MaxDelaySamples = 100_000
	case cfg.MaxDelaySamples < 0:
		cfg.MaxDelaySamples = 0 // exact CDFs
	}
	if cfg.SampleEveryTasks <= 0 {
		cfg.SampleEveryTasks = 65536
	}
}

// ScaleMetrics reports the throughput and memory profile of a streaming
// run. BytesPerTask counts cumulative allocation (runtime TotalAlloc
// delta over the run divided by tasks), not live heap; PeakHeapBytes is
// the largest live heap observed at the sample points and serves as an
// RSS proxy.
type ScaleMetrics struct {
	Tasks          int64
	WallSeconds    float64
	TasksPerSecond float64
	BytesPerTask   float64
	PeakHeapBytes  uint64
}

// SimulateStream runs the selected policy over a generated task stream
// without materializing the trace. The characterization is required for
// the HARMONY policies (characterize a short materialized sample of the
// same workload first) and may be nil for baseline/always-on.
func SimulateStream(cfg StreamConfig, c *Characterization, simCfg SimulationConfig) (*SimulationResult, *ScaleMetrics, error) {
	cfg.defaults()
	simCfg.defaults()

	wcfg := cfg.Workload
	if wcfg.Hours <= 0 {
		wcfg.Hours = 24
	}
	if wcfg.TasksPerSecond <= 0 {
		wcfg.TasksPerSecond = 1
	}
	machines, models, err := clusterPopulation(wcfg)
	if err != nil {
		return nil, nil, err
	}
	genCfg := trace.DefaultConfig(wcfg.Seed)
	genCfg.Horizon = wcfg.Hours * trace.Hour
	genCfg.RatePerS = wcfg.TasksPerSecond
	genCfg.Machines = machines
	src, err := trace.NewGenSource(genCfg, cfg.ChunkSize)
	if err != nil {
		return nil, nil, fmt.Errorf("harmony: stream workload: %w", err)
	}

	setup, err := buildPolicySetup(machines, models, c, simCfg)
	if err != nil {
		return nil, nil, err
	}

	meter := newMeterSource(src, cfg.SampleEveryTasks)
	start := time.Now()
	res, err := sim.Run(sim.Config{
		Source:          meter,
		Models:          models,
		Price:           setup.price,
		Policy:          setup.policy,
		Period:          simCfg.PeriodSeconds,
		NumTypes:        setup.numTypes,
		TypeOf:          setup.typeOf,
		Relabel:         setup.relabel,
		SwitchCost:      setup.switchCost,
		BootDelay:       simCfg.BootDelaySeconds,
		MTBFHours:       simCfg.MTBFHours,
		MaxDelaySamples: cfg.MaxDelaySamples,
	})
	wall := time.Since(start)
	if err != nil {
		return nil, nil, fmt.Errorf("harmony: stream simulate %v: %w", simCfg.Policy, err)
	}
	if setup.harmony != nil && setup.harmony.Err() != nil {
		return nil, nil, fmt.Errorf("harmony: policy error: %w", setup.harmony.Err())
	}
	return buildResult(res, setup.harmony), meter.metrics(wall), nil
}

// meterSource wraps a TaskSource and measures the run around it: task
// count, allocation volume, and a sampled live-heap peak. It lives in
// the root package — the deterministic internal packages must not read
// the runtime clock or memory statistics themselves.
type meterSource struct {
	src        trace.TaskSource
	every      int64
	n          int64
	startTotal uint64
	peakHeap   uint64
}

func newMeterSource(src trace.TaskSource, every int64) *meterSource {
	m := &meterSource{src: src, every: every}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.startTotal = ms.TotalAlloc
	m.peakHeap = ms.HeapAlloc
	return m
}

func (m *meterSource) Meta() trace.Meta { return m.src.Meta() }

func (m *meterSource) Next(t *trace.Task) (bool, error) {
	ok, err := m.src.Next(t)
	if ok {
		m.n++
		if m.n%m.every == 0 {
			m.sample()
		}
	}
	return ok, err
}

func (m *meterSource) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > m.peakHeap {
		m.peakHeap = ms.HeapAlloc
	}
}

// metrics finalizes the measurements after the run completes. It takes
// one last heap sample so short runs (fewer tasks than the sample
// interval) still report a meaningful peak.
func (m *meterSource) metrics(wall time.Duration) *ScaleMetrics {
	m.sample()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out := &ScaleMetrics{
		Tasks:         m.n,
		WallSeconds:   wall.Seconds(),
		PeakHeapBytes: m.peakHeap,
	}
	if m.n > 0 {
		out.BytesPerTask = float64(ms.TotalAlloc-m.startTotal) / float64(m.n)
	}
	if out.WallSeconds > 0 {
		out.TasksPerSecond = float64(m.n) / out.WallSeconds
	}
	return out
}
