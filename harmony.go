// Package harmony is a reproduction of "HARMONY: Dynamic
// Heterogeneity-Aware Resource Provisioning in the Cloud" (Zhang, Zhani,
// Boutaba, Hellerstein — ICDCS 2013): a dynamic capacity provisioning
// framework that characterizes a heterogeneous workload with two-step
// K-means clustering, forecasts per-class arrival rates with ARIMA, sizes
// container reservations by statistical multiplexing, and controls the
// number of powered machines of each type with a Model Predictive Control
// loop around the CBS-RELAX linear program.
//
// The package is a facade over the building blocks in internal/: workload
// generation (internal/trace), characterization (internal/classify),
// forecasting (internal/forecast), the M/G/c queueing model
// (internal/queueing), container sizing (internal/container), the LP
// solver (internal/lp), the controller (internal/core), the cluster
// simulator (internal/sim) and the policies (internal/sched).
//
// Typical use:
//
//	w, _ := harmony.GenerateWorkload(harmony.WorkloadConfig{Seed: 1, Hours: 24, TasksPerSecond: 1, Cluster: harmony.ClusterTableII, ClusterScale: 10})
//	ch, _ := w.Characterize(harmony.CharacterizeConfig{})
//	res, _ := harmony.Simulate(w, ch, harmony.SimulationConfig{Policy: harmony.PolicyCBS})
//	fmt.Printf("energy: %.1f kWh, mean production delay: %.1fs\n",
//		res.EnergyKWh, res.MeanDelaySeconds[harmony.GroupProduction])
package harmony

import (
	"errors"
	"fmt"
	"io"
	"os"

	"harmony/internal/classify"
	"harmony/internal/core"
	"harmony/internal/energy"
	"harmony/internal/sched"
	"harmony/internal/sim"
	"harmony/internal/stats"
	"harmony/internal/trace"
)

// Point is one (x, y) sample of a plotted series.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points — the unit every experiment emits.
type Series struct {
	Name   string
	Points []Point
}

func fromStatsSeries(s stats.Series) Series {
	out := Series{Name: s.Name, Points: make([]Point, len(s.Points))}
	for i, p := range s.Points {
		out.Points[i] = Point{X: p.X, Y: p.Y}
	}
	return out
}

// Render writes the series as aligned text rows.
func (s Series) Render() string {
	ss := stats.Series{Name: s.Name, Points: make([]stats.Point, len(s.Points))}
	for i, p := range s.Points {
		ss.Points[i] = stats.Point{X: p.X, Y: p.Y}
	}
	return ss.Render()
}

// Group identifies a task priority group.
type Group = trace.PriorityGroup

// Priority groups (gratis = priorities 0-1, other = 2-8, production = 9-11).
const (
	GroupGratis     = trace.Gratis
	GroupOther      = trace.Other
	GroupProduction = trace.Production
)

// Groups lists the three priority groups.
func Groups() []Group { return trace.Groups() }

// Cluster selects the simulated machine population.
type Cluster int

// Cluster kinds.
const (
	// ClusterTableII is the paper's evaluation cluster (Table II):
	// four server models, 10 000 machines at scale 1.
	ClusterTableII Cluster = iota + 1
	// ClusterGoogleLike is the ten-type population of Figure 5 with
	// synthetic energy models.
	ClusterGoogleLike
)

// WorkloadConfig parameterizes synthetic workload generation.
type WorkloadConfig struct {
	Seed           int64
	Hours          float64 // trace length (default 24)
	TasksPerSecond float64 // mean arrival rate (default 1)
	Cluster        Cluster // default ClusterTableII
	// ClusterScale divides machine counts (e.g. 10 turns the 10 000
	// machine Table II cluster into 1 000 machines). Default 1.
	ClusterScale int
}

// Workload is a generated task trace plus its machine population and
// energy models.
type Workload struct {
	Trace  *trace.Trace
	Models []energy.Model
}

// GenerateWorkload builds a synthetic Google-like workload (Section III
// statistics) against the selected cluster.
func GenerateWorkload(cfg WorkloadConfig) (*Workload, error) {
	if cfg.Hours <= 0 {
		cfg.Hours = 24
	}
	if cfg.TasksPerSecond <= 0 {
		cfg.TasksPerSecond = 1
	}
	if cfg.ClusterScale <= 0 {
		cfg.ClusterScale = 1
	}
	if cfg.Cluster == 0 {
		cfg.Cluster = ClusterTableII
	}

	machines, models, err := clusterPopulation(cfg)
	if err != nil {
		return nil, err
	}

	genCfg := trace.DefaultConfig(cfg.Seed)
	genCfg.Horizon = cfg.Hours * trace.Hour
	genCfg.RatePerS = cfg.TasksPerSecond
	genCfg.Machines = machines
	tr, err := trace.Generate(genCfg)
	if err != nil {
		return nil, fmt.Errorf("harmony: generate workload: %w", err)
	}
	return &Workload{Trace: tr, Models: models}, nil
}

// clusterPopulation resolves a workload config's cluster selection into
// a machine population and matching energy models.
func clusterPopulation(cfg WorkloadConfig) ([]trace.MachineType, []energy.Model, error) {
	if cfg.ClusterScale <= 0 {
		cfg.ClusterScale = 1
	}
	if cfg.Cluster == 0 {
		cfg.Cluster = ClusterTableII
	}
	var (
		machines []trace.MachineType
		models   []energy.Model
	)
	switch cfg.Cluster {
	case ClusterTableII:
		models = energy.TableII()
		for i := range models {
			models[i].Count /= cfg.ClusterScale
			if models[i].Count < 1 {
				models[i].Count = 1
			}
			machines = append(machines, models[i].MachineType(i+1))
		}
	case ClusterGoogleLike:
		machines = trace.GoogleLikeMachines(12000 / cfg.ClusterScale)
		models = energy.SyntheticModels(machines)
	default:
		return nil, nil, fmt.Errorf("harmony: unknown cluster %d", int(cfg.Cluster))
	}
	return machines, models, nil
}

// LoadWorkload reads a workload from a trace file produced by
// cmd/tracegen (JSON-lines format). Energy models for the machine types
// are synthesized from their capacities when they are not the Table II
// population.
func LoadWorkload(path string) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("harmony: load workload: %w", err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return nil, fmt.Errorf("harmony: load workload: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("harmony: load workload: %w", err)
	}
	return &Workload{Trace: tr, Models: energy.SyntheticModels(tr.Machines)}, nil
}

// NumTasks returns the number of tasks in the workload.
func (w *Workload) NumTasks() int { return len(w.Trace.Tasks) }

// NumMachines returns the machine population size.
func (w *Workload) NumMachines() int { return w.Trace.TotalMachines() }

// CharacterizeConfig controls the two-step clustering.
type CharacterizeConfig struct {
	MaxClassesPerGroup int     // default 12
	ElbowGain          float64 // default 0.05
	Seed               int64
}

// ClassInfo is the public view of one task class.
type ClassInfo struct {
	ID           int
	Group        Group
	CPU, Mem     float64 // centroid demand
	CPUStd       float64
	MemStd       float64
	Count        int
	SubDurations []float64 // mean duration per sub-class, short first
	SubCounts    []int
}

// Characterization is the result of workload clustering.
type Characterization struct {
	ch *classify.Characterization
}

// Characterize runs HARMONY's two-step task classification on the workload.
func (w *Workload) Characterize(cfg CharacterizeConfig) (*Characterization, error) {
	if cfg.MaxClassesPerGroup <= 0 {
		cfg.MaxClassesPerGroup = 12
	}
	if cfg.ElbowGain <= 0 {
		cfg.ElbowGain = 0.05
	}
	ch, err := classify.Characterize(w.Trace, classify.Config{
		MaxK:    cfg.MaxClassesPerGroup,
		MinGain: cfg.ElbowGain,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("harmony: characterize: %w", err)
	}
	return &Characterization{ch: ch}, nil
}

// Classes returns the task classes.
func (c *Characterization) Classes() []ClassInfo {
	out := make([]ClassInfo, len(c.ch.Classes))
	for i := range c.ch.Classes {
		cl := &c.ch.Classes[i]
		info := ClassInfo{
			ID:     cl.ID,
			Group:  cl.Group,
			CPU:    cl.CPU,
			Mem:    cl.Mem,
			CPUStd: cl.CPUStd,
			MemStd: cl.MemStd,
			Count:  cl.Count,
		}
		for _, sub := range cl.Sub {
			info.SubDurations = append(info.SubDurations, sub.MeanDuration)
			info.SubCounts = append(info.SubCounts, sub.Count)
		}
		out[i] = info
	}
	return out
}

// NumTaskTypes returns the number of provisionable task types
// (class × short/long sub-class).
func (c *Characterization) NumTaskTypes() int { return len(c.ch.TaskTypes()) }

// Save serializes the characterization as JSON, so the offline
// characterization phase and the online controller can run in different
// processes (§VIII).
func (c *Characterization) Save(w io.Writer) error {
	return classify.Save(w, c.ch)
}

// LoadCharacterization parses a characterization produced by Save.
func LoadCharacterization(r io.Reader) (*Characterization, error) {
	ch, err := classify.Load(r)
	if err != nil {
		return nil, err
	}
	return &Characterization{ch: ch}, nil
}

// Policy selects the provisioning scheme to simulate.
type Policy int

// Provisioning policies.
const (
	// PolicyBaseline is the heterogeneity-oblivious comparison scheme:
	// 80% bottleneck utilization, machines powered greedily by energy
	// efficiency.
	PolicyBaseline Policy = iota + 1
	// PolicyCBS is HARMONY with container-based scheduling.
	PolicyCBS
	// PolicyCBP is HARMONY with container-based provisioning only.
	PolicyCBP
	// PolicyAlwaysOn keeps the whole cluster powered (no DCP).
	PolicyAlwaysOn
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyBaseline:
		return "baseline"
	case PolicyCBS:
		return "harmony-CBS"
	case PolicyCBP:
		return "harmony-CBP"
	case PolicyAlwaysOn:
		return "always-on"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// SimulationConfig parameterizes one simulated run.
type SimulationConfig struct {
	Policy        Policy
	PeriodSeconds float64 // control period (default 300)
	Horizon       int     // MPC look-ahead periods (default 2)
	// Epsilon is the per-machine overflow bound for container sizing
	// (default 0.25; the paper handles residual violations by reserving
	// extra machines, §VII-A — tighter bounds inflate reservations).
	Epsilon float64
	// Omega is the over-provisioning factor compensating bin-packing
	// inefficiency (Eq. 17; default 1.05).
	Omega float64
	// SLODelay overrides the per-group scheduling-delay targets.
	SLODelay map[Group]float64
	// SwitchCostDollars is the per-transition cost of the largest
	// machine; other types scale by idle power. Default 0.01.
	SwitchCostDollars float64
	// PricePerKWh is a flat electricity price (default 0.08). Set
	// DiurnalPrice to use a sinusoidal daily price instead.
	PricePerKWh  float64
	DiurnalPrice bool
	// BaselineUtilization is the baseline policy's bottleneck target
	// (default 0.8).
	BaselineUtilization float64
	// BootDelaySeconds is how long machines take from power-on to
	// accepting tasks (default 120). Reactive policies feel this as
	// scheduling delay on every ramp; the MPC controller pre-provisions.
	BootDelaySeconds float64
	// MTBFHours, when positive, injects machine failures with the given
	// mean time between failures; failed machines kill their tasks
	// (requeued) and stay down for 15 minutes.
	MTBFHours float64
	// Forecaster selects the arrival-rate prediction model for the
	// HARMONY policies: "arima" (default), "auto-arima", "seasonal",
	// or "ewma".
	Forecaster string
}

func (cfg *SimulationConfig) defaults() {
	if cfg.PeriodSeconds <= 0 {
		cfg.PeriodSeconds = 300
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 2
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 0.25
	}
	if cfg.Omega < 1 {
		cfg.Omega = 1.05
	}
	if cfg.SwitchCostDollars <= 0 {
		cfg.SwitchCostDollars = 0.01
	}
	if cfg.PricePerKWh <= 0 {
		cfg.PricePerKWh = 0.08
	}
	if cfg.BaselineUtilization <= 0 {
		cfg.BaselineUtilization = 0.8
	}
	if cfg.BootDelaySeconds < 0 {
		cfg.BootDelaySeconds = 0
	} else if cfg.BootDelaySeconds == 0 {
		cfg.BootDelaySeconds = 120
	}
}

// SimulationResult is the outcome of one simulated run.
type SimulationResult struct {
	Policy string

	EnergyKWh    float64
	EnergyCost   float64
	SwitchCost   float64
	SwitchEvents int

	Scheduled   int
	Unscheduled int
	Completed   int
	// Failures/TasksKilled report injected machine failures (0 unless
	// MTBFHours was set).
	Failures    int
	TasksKilled int

	// MeanDelaySeconds is the mean scheduling delay per priority group.
	MeanDelaySeconds map[Group]float64
	// DelayCDF holds per-group scheduling-delay CDF curves.
	DelayCDF map[Group]Series
	// ActiveMachines is the powered-machine count over time.
	ActiveMachines Series
	// QueueLength is the queue length over time.
	QueueLength Series
	// Containers, for HARMONY policies, is the per-group container
	// count over time (Figure 20). Nil otherwise.
	Containers map[Group]Series
}

// runRawSim runs an always-on simulation and returns the raw sim result;
// experiment code uses it to reach series the public result does not carry.
func runRawSim(w *Workload, cfg SimulationConfig, counts []int) (*sim.Result, error) {
	cfg.defaults()
	return sim.Run(sim.Config{
		Trace:    w.Trace,
		Models:   w.Models,
		Price:    energy.FlatPrice(cfg.PricePerKWh),
		Policy:   &sched.AlwaysOn{Counts: counts},
		Period:   cfg.PeriodSeconds,
		NumTypes: 1,
		TypeOf:   func(trace.Task) int { return 0 },
	})
}

// policySetup bundles everything a sim.Config needs beyond the task
// stream itself: the price model, per-type switch costs, the task-type
// mapping, and the constructed policy. It is shared between the batch
// (Simulate) and streaming (SimulateStream) entry points.
type policySetup struct {
	price      energy.Price
	switchCost []float64
	numTypes   int
	typeOf     func(trace.Task) int
	relabel    func(int, float64) int
	policy     sim.Policy
	harmony    *sched.Harmony
}

// buildPolicySetup constructs the policy plumbing for a machine
// population. cfg must already have defaults applied.
func buildPolicySetup(machines []trace.MachineType, models []energy.Model, c *Characterization, cfg SimulationConfig) (*policySetup, error) {
	var price energy.Price = energy.FlatPrice(cfg.PricePerKWh)
	if cfg.DiurnalPrice {
		price = energy.DiurnalPrice{Base: cfg.PricePerKWh, Amplitude: cfg.PricePerKWh / 3, PhaseHour: 4}
	}

	// Per-type switch costs scale with idle power relative to the
	// largest machine.
	maxIdle := 0.0
	for _, m := range models {
		if m.IdleWatts > maxIdle {
			maxIdle = m.IdleWatts
		}
	}
	switchCost := make([]float64, len(models))
	for i, m := range models {
		switchCost[i] = cfg.SwitchCostDollars * m.IdleWatts / maxIdle
	}

	// Task-type mapping. Only the HARMONY policies get per-type queues
	// and relabeling: container-based scheduling restructures the
	// scheduler around task classes. The baseline and always-on policies
	// keep the legacy scheduler — per-priority FIFO first-fit — which
	// suffers head-of-line blocking when a large task cannot be placed
	// (the schedulability failure the paper attributes to
	// heterogeneity-oblivious provisioning, §IX-B).
	numTypes := 1
	typeOf := func(trace.Task) int { return 0 }
	var relabel func(int, float64) int
	if c != nil && (cfg.Policy == PolicyCBS || cfg.Policy == PolicyCBP) {
		types := c.ch.TaskTypes()
		labeler := classify.NewLabeler(c.ch)
		typeIdx := make(map[classify.TypeID]int, len(types))
		for i, tt := range types {
			typeIdx[tt.ID] = i
		}
		numTypes = len(types)
		typeOf = func(task trace.Task) int {
			id, ok := labeler.Initial(task)
			if !ok {
				return 0
			}
			return typeIdx[id]
		}
		relabel = func(current int, age float64) int {
			if current < 0 || current >= len(types) {
				return current
			}
			next := labeler.Refresh(types[current].ID, age)
			if out, ok := typeIdx[next]; ok {
				return out
			}
			return current
		}
	}
	var harmonyPolicy *sched.Harmony

	var policy sim.Policy
	switch cfg.Policy {
	case PolicyAlwaysOn:
		counts := make([]int, len(machines))
		for i, mt := range machines {
			counts[i] = mt.Count
		}
		policy = &sched.AlwaysOn{Counts: counts}
	case PolicyBaseline:
		policy = &sched.Baseline{
			Machines:    machines,
			Models:      models,
			Utilization: cfg.BaselineUtilization,
		}
	case PolicyCBS, PolicyCBP:
		if c == nil {
			return nil, errors.New("harmony: HARMONY policies need a characterization")
		}
		mode := core.CBS
		if cfg.Policy == PolicyCBP {
			mode = core.CBP
		}
		var predictor sched.PredictorKind
		switch cfg.Forecaster {
		case "", "arima":
			predictor = sched.PredictARIMA
		case "auto-arima":
			predictor = sched.PredictAutoARIMA
		case "seasonal":
			predictor = sched.PredictSeasonal
		case "ewma":
			predictor = sched.PredictEWMA
		default:
			return nil, fmt.Errorf("harmony: unknown forecaster %q", cfg.Forecaster)
		}
		types := c.ch.TaskTypes()
		h, err := sched.NewHarmony(sched.HarmonyConfig{
			Mode:          mode,
			Machines:      machines,
			Models:        models,
			Types:         types,
			Price:         price,
			PeriodSeconds: cfg.PeriodSeconds,
			Horizon:       cfg.Horizon,
			SLODelay:      cfg.SLODelay,
			Epsilon:       cfg.Epsilon,
			Omega:         cfg.Omega,
			SwitchCost:    switchCost,
			Predictor:     predictor,
		})
		if err != nil {
			return nil, err
		}
		harmonyPolicy = h
		policy = h
	default:
		return nil, fmt.Errorf("harmony: unknown policy %d", int(cfg.Policy))
	}
	return &policySetup{
		price:      price,
		switchCost: switchCost,
		numTypes:   numTypes,
		typeOf:     typeOf,
		relabel:    relabel,
		policy:     policy,
		harmony:    harmonyPolicy,
	}, nil
}

// Simulate runs the workload under the selected policy and returns its
// measurements. The characterization is required for the HARMONY policies
// and optional (may be nil) for baseline/always-on.
func Simulate(w *Workload, c *Characterization, cfg SimulationConfig) (*SimulationResult, error) {
	cfg.defaults()
	if w == nil {
		return nil, errors.New("harmony: nil workload")
	}
	setup, err := buildPolicySetup(w.Trace.Machines, w.Models, c, cfg)
	if err != nil {
		return nil, err
	}

	res, err := sim.Run(sim.Config{
		Trace:      w.Trace,
		Models:     w.Models,
		Price:      setup.price,
		Policy:     setup.policy,
		Period:     cfg.PeriodSeconds,
		NumTypes:   setup.numTypes,
		TypeOf:     setup.typeOf,
		Relabel:    setup.relabel,
		SwitchCost: setup.switchCost,
		BootDelay:  cfg.BootDelaySeconds,
		MTBFHours:  cfg.MTBFHours,
	})
	if err != nil {
		return nil, fmt.Errorf("harmony: simulate %v: %w", cfg.Policy, err)
	}
	if setup.harmony != nil && setup.harmony.Err() != nil {
		return nil, fmt.Errorf("harmony: policy error: %w", setup.harmony.Err())
	}
	return buildResult(res, setup.harmony), nil
}

// buildResult converts a raw sim.Result into the public view.
func buildResult(res *sim.Result, harmonyPolicy *sched.Harmony) *SimulationResult {
	out := &SimulationResult{
		Policy:           res.Policy,
		EnergyKWh:        res.EnergyKWh,
		EnergyCost:       res.EnergyCost,
		SwitchCost:       res.SwitchCost,
		SwitchEvents:     res.SwitchEvents,
		Scheduled:        res.Scheduled,
		Unscheduled:      res.Unscheduled,
		Completed:        res.Completed,
		Failures:         res.Failures,
		TasksKilled:      res.TasksKilled,
		MeanDelaySeconds: make(map[Group]float64, trace.NumGroups),
		DelayCDF:         make(map[Group]Series, trace.NumGroups),
		ActiveMachines:   fromStatsSeries(res.ActiveSeries),
		QueueLength:      fromStatsSeries(res.QueueSeries),
	}
	for _, g := range trace.Groups() {
		out.MeanDelaySeconds[g] = res.MeanDelay(g)
		cdf := res.DelayByGroup[g]
		pts := cdf.Points(101)
		s := stats.Series{Name: fmt.Sprintf("delay CDF %s (%s)", g, res.Policy), Points: pts}
		out.DelayCDF[g] = fromStatsSeries(s)
	}
	if harmonyPolicy != nil {
		out.Containers = make(map[Group]Series, trace.NumGroups)
		for g, s := range harmonyPolicy.ContainerSeries() {
			out.Containers[g] = fromStatsSeries(s)
		}
	}
	return out
}
