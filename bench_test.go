package harmony

import (
	"fmt"
	"sync"
	"testing"
)

// benchEnv is the shared experiment environment used by the per-figure
// benchmarks. It is small enough that the full evaluation (three policy
// simulations) completes in seconds; the Env caches the workload,
// characterization, and simulations, so per-figure regeneration cost is
// what each benchmark measures.
var (
	benchOnce sync.Once
	benchE    *Env
)

func benchEnvironment() *Env {
	benchOnce.Do(func() {
		benchE = NewEnv(
			WorkloadConfig{
				Seed:           1,
				Hours:          4,
				TasksPerSecond: 0.4,
				Cluster:        ClusterTableII,
				ClusterScale:   50,
			},
			CharacterizeConfig{Seed: 1, MaxClassesPerGroup: 8},
			SimulationConfig{PeriodSeconds: 300},
		)
	})
	return benchE
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	env := benchEnvironment()
	// Warm the caches outside the timed region.
	if _, err := env.Run(id); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper figure/table (see DESIGN.md experiment index).

func BenchmarkFig1CPUDemand(b *testing.B)        { benchExperiment(b, "fig1") }
func BenchmarkFig2MemDemand(b *testing.B)        { benchExperiment(b, "fig2") }
func BenchmarkFig3MachineUsage(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig4DelayCDF(b *testing.B)         { benchExperiment(b, "fig4") }
func BenchmarkFig5MachineTypes(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkFig6DurationCDF(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig7TaskSizes(b *testing.B)        { benchExperiment(b, "fig7") }
func BenchmarkFig9EnergyCurves(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10to12ClassSizes(b *testing.B)  { benchExperiment(b, "fig10-12") }
func BenchmarkFig13to17Centroids(b *testing.B)   { benchExperiment(b, "fig13-17") }
func BenchmarkFig14to18ShortLong(b *testing.B)   { benchExperiment(b, "fig14-18") }
func BenchmarkFig19ArrivalRates(b *testing.B)    { benchExperiment(b, "fig19") }
func BenchmarkFig20Containers(b *testing.B)      { benchExperiment(b, "fig20") }
func BenchmarkFig21BaselineServers(b *testing.B) { benchExperiment(b, "fig21") }
func BenchmarkFig22CBSServers(b *testing.B)      { benchExperiment(b, "fig22") }
func BenchmarkFig23to25PolicyDelays(b *testing.B) {
	benchExperiment(b, "fig23-25")
}
func BenchmarkFig26Energy(b *testing.B) { benchExperiment(b, "fig26") }

// End-to-end pipeline benchmarks: the real cost of one simulated run per
// policy (workload and characterization are reused; the simulation runs
// fresh each iteration).
func BenchmarkSimulatePolicy(b *testing.B) {
	env := benchEnvironment()
	w, err := env.Workload()
	if err != nil {
		b.Fatal(err)
	}
	ch, err := env.Characterization()
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []Policy{PolicyBaseline, PolicyCBP, PolicyCBS} {
		b.Run(p.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(w, ch, SimulationConfig{Policy: p, PeriodSeconds: 300}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation benchmarks for the design knobs DESIGN.md calls out. Each
// sub-benchmark reports the measured energy and mean production delay via
// b.ReportMetric, so a bench run doubles as an ablation table.
func BenchmarkAblationOmega(b *testing.B) {
	env := benchEnvironment()
	w, _ := env.Workload()
	ch, _ := env.Characterization()
	for _, omega := range []float64{1.0, 1.1, 1.3, 1.5} {
		b.Run(fmt.Sprintf("omega=%.1f", omega), func(b *testing.B) {
			var res *SimulationResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Simulate(w, ch, SimulationConfig{
					Policy: PolicyCBS, PeriodSeconds: 300, Omega: omega,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.EnergyKWh, "kWh")
			b.ReportMetric(res.MeanDelaySeconds[GroupProduction], "s-prod-delay")
		})
	}
}

func BenchmarkAblationEpsilon(b *testing.B) {
	env := benchEnvironment()
	w, _ := env.Workload()
	ch, _ := env.Characterization()
	for _, eps := range []float64{0.05, 0.15, 0.25, 0.40} {
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			var res *SimulationResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Simulate(w, ch, SimulationConfig{
					Policy: PolicyCBS, PeriodSeconds: 300, Epsilon: eps,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.EnergyKWh, "kWh")
			b.ReportMetric(res.MeanDelaySeconds[GroupProduction], "s-prod-delay")
		})
	}
}

func BenchmarkAblationHorizon(b *testing.B) {
	env := benchEnvironment()
	w, _ := env.Workload()
	ch, _ := env.Characterization()
	for _, horizon := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("W=%d", horizon), func(b *testing.B) {
			var res *SimulationResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Simulate(w, ch, SimulationConfig{
					Policy: PolicyCBS, PeriodSeconds: 300, Horizon: horizon,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.EnergyKWh, "kWh")
			b.ReportMetric(res.SwitchCost, "$-switch")
		})
	}
}

// BenchmarkAblationFailures measures how the CBS pipeline degrades under
// injected machine failures (the monitoring module's failure reports in
// the paper's architecture).
func BenchmarkAblationFailures(b *testing.B) {
	env := benchEnvironment()
	w, _ := env.Workload()
	ch, _ := env.Characterization()
	for _, mtbf := range []float64{0, 100, 20} {
		b.Run(fmt.Sprintf("mtbf=%vh", mtbf), func(b *testing.B) {
			var res *SimulationResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Simulate(w, ch, SimulationConfig{
					Policy: PolicyCBS, PeriodSeconds: 300, MTBFHours: mtbf,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Failures), "failures")
			b.ReportMetric(float64(res.TasksKilled), "killed")
			b.ReportMetric(res.MeanDelaySeconds[GroupProduction], "s-prod-delay")
		})
	}
}

// BenchmarkAblationForecaster compares the arrival-rate predictors (the
// paper uses ARIMA; seasonal-naive and EWMA are the natural baselines).
func BenchmarkAblationForecaster(b *testing.B) {
	env := benchEnvironment()
	w, _ := env.Workload()
	ch, _ := env.Characterization()
	for _, f := range []string{"arima", "auto-arima", "seasonal", "ewma"} {
		b.Run(f, func(b *testing.B) {
			var res *SimulationResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Simulate(w, ch, SimulationConfig{
					Policy: PolicyCBS, PeriodSeconds: 300, Forecaster: f,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.EnergyKWh, "kWh")
			b.ReportMetric(res.MeanDelaySeconds[GroupProduction], "s-prod-delay")
		})
	}
}

// policyEnvs builds n fresh Envs sharing one pre-built workload and
// characterization, so the three-policy benchmarks time exactly the
// simulations (the Env caches would otherwise absorb every iteration
// after the first).
func policyEnvs(b *testing.B, n int) []*Env {
	b.Helper()
	base := benchEnvironment()
	w, err := base.Workload()
	if err != nil {
		b.Fatal(err)
	}
	ch, err := base.Characterization()
	if err != nil {
		b.Fatal(err)
	}
	envs := make([]*Env, n)
	for i := range envs {
		e := NewEnv(base.WorkloadCfg, base.CharacterizeCfg, base.SimCfg)
		e.prime(w, ch)
		envs[i] = e
	}
	return envs
}

// BenchmarkEnvSequentialPolicies is the pre-parallelization baseline:
// the three policy simulations of the paper's §IX comparison run one
// after another.
func BenchmarkEnvSequentialPolicies(b *testing.B) {
	envs := policyEnvs(b, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := envs[i]
		if _, err := e.BaselineRun(); err != nil {
			b.Fatal(err)
		}
		if _, err := e.CBSRun(); err != nil {
			b.Fatal(err)
		}
		if _, err := e.CBPRun(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnvParallel fans the same three simulations out across
// goroutines via Env.PolicyRuns. Compare ns/op against
// BenchmarkEnvSequentialPolicies: on >= 4 cores the fan-out runs at the
// speed of the slowest single policy, a ~2-3x wall-clock win.
func BenchmarkEnvParallel(b *testing.B) {
	envs := policyEnvs(b, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := envs[i].PolicyRuns(); err != nil {
			b.Fatal(err)
		}
	}
}
