// Command capacity_planning demonstrates HARMONY's analytical building
// blocks in isolation: the M/G/c queueing model that converts arrival
// rates and delay SLOs into container counts (Section VI), and the
// statistical-multiplexing container sizing of Eq. 3 (Section VII-A).
package main

import (
	"fmt"
	"log"

	"harmony/internal/container"
	"harmony/internal/queueing"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("container counts for a delay SLO (M/G/c, Eqs. 1-2)")
	fmt.Println("---------------------------------------------------")
	scenarios := []struct {
		name     string
		lambda   float64 // tasks per second
		meanDur  float64 // seconds
		sqCV     float64
		sloDelay float64 // seconds
	}{
		{"web front-end burst", 2.0, 30, 1.0, 5},
		{"batch analytics", 0.5, 600, 2.5, 120},
		{"long-running service", 0.01, 86400, 0.5, 60},
		{"background crawler", 5.0, 10, 1.2, 30},
	}
	for _, sc := range scenarios {
		mu := 1 / sc.meanDur
		c, err := queueing.MinContainers(sc.lambda, mu, sc.sqCV, sc.sloDelay)
		if err != nil {
			return fmt.Errorf("%s: %w", sc.name, err)
		}
		wait, err := queueing.MGcWait(c, sc.lambda, mu, sc.sqCV)
		if err != nil {
			return err
		}
		rho := queueing.Utilization(c, sc.lambda, mu)
		fmt.Printf("%-22s λ=%5.2f/s dur=%6.0fs SLO=%4.0fs -> %5d containers"+
			" (wait %6.2fs, util %4.1f%%)\n",
			sc.name, sc.lambda, sc.meanDur, sc.sloDelay, c, wait, rho*100)
	}

	fmt.Println()
	fmt.Println("container sizing by statistical multiplexing (Eq. 3)")
	fmt.Println("-----------------------------------------------------")
	classes := []struct {
		name            string
		cpuMean, cpuStd float64
		memMean, memStd float64
	}{
		{"tiny uniform", 0.0125, 0.002, 0.0159, 0.003},
		{"cpu-intensive", 0.10, 0.03, 0.02, 0.005},
		{"memory-intensive", 0.02, 0.004, 0.12, 0.04},
	}
	for _, eps := range []float64{0.01, 0.05, 0.25} {
		fmt.Printf("\nmachine-overflow bound eps = %.2f:\n", eps)
		for _, cl := range classes {
			s, err := container.ForClass(cl.cpuMean, cl.cpuStd, cl.memMean, cl.memStd, eps)
			if err != nil {
				return err
			}
			fmt.Printf("  %-18s cpu %.4f -> %.4f, mem %.4f -> %.4f (Z=%.2f)\n",
				cl.name, cl.cpuMean, s.CPU, cl.memMean, s.Mem, s.Z)
		}
	}

	// How many containers fit a machine before the violation probability
	// crosses the bound?
	fmt.Println()
	fmt.Println("violation probability vs packed containers (capacity 1.0)")
	fmt.Println("----------------------------------------------------------")
	const mean, std = 0.05, 0.015
	for _, n := range []int{10, 15, 18, 19, 20, 21} {
		p := container.ViolationProbability(1.0, float64(n)*mean, float64(n)*std*std)
		fmt.Printf("  %2d containers of %.2f±%.3f: P(overflow) = %.4f\n", n, mean, std, p)
	}
	return nil
}
