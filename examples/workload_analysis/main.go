// Command workload_analysis reproduces the paper's Section III analysis on
// a synthetic trace: demand over time, per-group arrival rates, duration
// CDFs, task-size heterogeneity, and the machine-type population — the
// data behind Figures 1-7.
package main

import (
	"fmt"
	"log"
	"sort"

	"harmony"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	env := harmony.NewEnv(
		harmony.WorkloadConfig{
			Seed:           7,
			Hours:          24,
			TasksPerSecond: 1,
			Cluster:        harmony.ClusterGoogleLike,
			ClusterScale:   10,
		},
		harmony.CharacterizeConfig{Seed: 7},
		harmony.SimulationConfig{},
	)

	w, err := env.Workload()
	if err != nil {
		return err
	}
	fmt.Printf("analyzing %d tasks against %d machines (10 types)\n\n",
		w.NumTasks(), w.NumMachines())

	for _, id := range []string{"fig1", "fig2", "fig5", "fig6", "fig7", "fig19"} {
		exp, err := env.Run(id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Printf("== %s: %s ==\n", exp.ID, exp.Title)
		for _, k := range sortedKeys(exp.Summary) {
			fmt.Printf("  %-40s %12.6g\n", k, exp.Summary[k])
		}
		fmt.Println()
	}

	// The headline heterogeneity observations of Section III.
	exp, err := env.Run("fig7")
	if err != nil {
		return err
	}
	for _, k := range sortedKeys(exp.Summary) {
		if v := exp.Summary[k]; v >= 100 {
			fmt.Printf("task sizes span orders of magnitude: %s = %.0fx\n", k, v)
		}
	}
	return nil
}

// sortedKeys returns the map's keys in sorted order so the printed
// summaries are deterministic run to run.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
