// Command quickstart demonstrates the HARMONY pipeline end to end on a
// small cluster: generate a synthetic Google-like workload, characterize
// it with two-step K-means, and compare the heterogeneity-oblivious
// baseline against HARMONY's CBS controller.
package main

import (
	"fmt"
	"log"

	"harmony"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 12-hour workload against a 1/100-scale Table II cluster
	// (100 machines across four heterogeneous server models).
	w, err := harmony.GenerateWorkload(harmony.WorkloadConfig{
		Seed:           42,
		Hours:          12,
		TasksPerSecond: 0.15,
		Cluster:        harmony.ClusterTableII,
		ClusterScale:   100,
	})
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d tasks, %d machines\n", w.NumTasks(), w.NumMachines())

	ch, err := w.Characterize(harmony.CharacterizeConfig{Seed: 1})
	if err != nil {
		return err
	}
	fmt.Printf("characterization: %d classes, %d task types\n",
		len(ch.Classes()), ch.NumTaskTypes())
	for _, cl := range ch.Classes() {
		fmt.Printf("  class %2d [%-10s] cpu %.4f±%.4f mem %.4f±%.4f tasks %d\n",
			cl.ID, cl.Group, cl.CPU, cl.CPUStd, cl.Mem, cl.MemStd, cl.Count)
	}

	for _, policy := range []harmony.Policy{harmony.PolicyBaseline, harmony.PolicyCBP, harmony.PolicyCBS} {
		res, err := harmony.Simulate(w, ch, harmony.SimulationConfig{Policy: policy})
		if err != nil {
			return err
		}
		fmt.Printf("\n%s:\n", res.Policy)
		fmt.Printf("  energy: %.2f kWh ($%.2f), switch events: %d\n",
			res.EnergyKWh, res.EnergyCost, res.SwitchEvents)
		fmt.Printf("  scheduled %d / unscheduled %d\n", res.Scheduled, res.Unscheduled)
		for _, g := range harmony.Groups() {
			fmt.Printf("  mean %-10s delay: %8.1f s\n", g, res.MeanDelaySeconds[g])
		}
	}
	return nil
}
