// Command energy_comparison reproduces the headline evaluation of the
// paper (Figures 21-26): the heterogeneity-oblivious baseline vs HARMONY's
// CBP and CBS on the same workload, reporting total energy, energy cost,
// and per-priority scheduling delays.
package main

import (
	"flag"
	"fmt"
	"log"

	"harmony"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		seed  = flag.Int64("seed", 3, "RNG seed")
		hours = flag.Float64("hours", 12, "workload hours")
		rate  = flag.Float64("rate", 1.5, "tasks per second")
		scale = flag.Int("scale", 20, "cluster scale divisor")
	)
	flag.Parse()

	env := harmony.NewEnv(
		harmony.WorkloadConfig{
			Seed:           *seed,
			Hours:          *hours,
			TasksPerSecond: *rate,
			Cluster:        harmony.ClusterTableII,
			ClusterScale:   *scale,
		},
		harmony.CharacterizeConfig{Seed: *seed},
		harmony.SimulationConfig{},
	)
	w, err := env.Workload()
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d tasks, %d machines over %.0f h\n\n",
		w.NumTasks(), w.NumMachines(), *hours)

	base, err := env.BaselineRun()
	if err != nil {
		return err
	}
	cbp, err := env.CBPRun()
	if err != nil {
		return err
	}
	cbs, err := env.CBSRun()
	if err != nil {
		return err
	}

	fmt.Printf("%-14s %10s %10s %10s %10s %28s\n",
		"policy", "kWh", "cost $", "sched", "unsched", "mean delay g/o/p (s)")
	for _, r := range []*harmony.SimulationResult{base, cbp, cbs} {
		fmt.Printf("%-14s %10.1f %10.2f %10d %10d %10.1f %8.1f %8.1f\n",
			r.Policy, r.EnergyKWh, r.EnergyCost, r.Scheduled, r.Unscheduled,
			r.MeanDelaySeconds[harmony.GroupGratis],
			r.MeanDelaySeconds[harmony.GroupOther],
			r.MeanDelaySeconds[harmony.GroupProduction])
	}

	if base.EnergyKWh > 0 {
		fmt.Printf("\nCBS energy saving vs baseline: %.1f%%\n",
			100*(base.EnergyKWh-cbs.EnergyKWh)/base.EnergyKWh)
		fmt.Printf("CBP energy saving vs baseline: %.1f%%\n",
			100*(base.EnergyKWh-cbp.EnergyKWh)/base.EnergyKWh)
	}
	return nil
}
