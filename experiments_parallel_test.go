package harmony

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

func smallEnv() *Env {
	return NewEnv(
		WorkloadConfig{Seed: 8, Hours: 2, TasksPerSecond: 0.25, ClusterScale: 100},
		CharacterizeConfig{Seed: 8, MaxClassesPerGroup: 4},
		SimulationConfig{PeriodSeconds: 300},
	)
}

// The tentpole determinism guarantee: running the three policy
// simulations concurrently must produce bit-identical results to
// running them one after another on a fresh Env with the same seeds.
func TestPolicyRunsMatchSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("policy simulations are slow")
	}

	seq := smallEnv()
	seqBase, err := seq.BaselineRun()
	if err != nil {
		t.Fatal(err)
	}
	seqCBS, err := seq.CBSRun()
	if err != nil {
		t.Fatal(err)
	}
	seqCBP, err := seq.CBPRun()
	if err != nil {
		t.Fatal(err)
	}

	par := smallEnv()
	base, cbs, cbp, err := par.PolicyRuns()
	if err != nil {
		t.Fatal(err)
	}

	for _, tt := range []struct {
		name     string
		seq, par *SimulationResult
	}{
		{"baseline", seqBase, base},
		{"cbs", seqCBS, cbs},
		{"cbp", seqCBP, cbp},
	} {
		if !reflect.DeepEqual(tt.seq, tt.par) {
			t.Errorf("%s: parallel result differs from sequential", tt.name)
		}
	}

	// The concurrent runs are cached: the accessors hand back the very
	// same results without re-simulating.
	again, err := par.BaselineRun()
	if err != nil {
		t.Fatal(err)
	}
	if again != base {
		t.Error("BaselineRun after PolicyRuns re-simulated instead of using the cache")
	}
}

// Env accessors must be safe under concurrent callers: many goroutines
// hammering the same accessor get one shared result, not a race.
// (go test -race is the real assertion here.)
func TestEnvConcurrentWorkloadAccess(t *testing.T) {
	env := smallEnv()
	const callers = 16
	results := make([]*Workload, callers)
	errs := make([]func() error, callers)
	for i := range errs {
		errs[i] = func() error {
			w, err := env.Workload()
			results[i] = w
			return err
		}
	}
	if err := runAll(errs...); err != nil {
		t.Fatal(err)
	}
	for i, w := range results {
		if w != results[0] {
			t.Fatalf("caller %d saw a different workload instance", i)
		}
	}
}

func TestRunAllErrorOrdering(t *testing.T) {
	if err := runAll(); err != nil {
		t.Errorf("empty runAll = %v", err)
	}
	errA := errors.New("a")
	errB := errors.New("b")
	var ran atomic.Int32
	err := runAll(
		func() error { ran.Add(1); return nil },
		func() error { ran.Add(1); return errA },
		func() error { ran.Add(1); return errB },
	)
	if err != errA {
		t.Errorf("runAll error = %v, want first failing fn's error %v", err, errA)
	}
	if ran.Load() != 3 {
		t.Errorf("runAll ran %d fns, want all 3", ran.Load())
	}
}
